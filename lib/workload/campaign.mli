(** Randomized fault-campaign harness.

    A campaign sweeps a grid of randomized scenario configurations — group
    size, offered load, crash schedules, send/receive omission probabilities,
    link loss, and per-subrun adversarial silencing up to (and, on request,
    beyond) the paper's resilience bound [t = (n-1)/2].  Every run is driven
    by a seed derived deterministically from the campaign seed, executed on
    the simulator, and judged by {!Checker.check} plus liveness/progress
    invariants.  A failing run is automatically {e shrunk} to a minimal
    reproducer and the whole campaign is emitted as a machine-readable JSON
    report, so any failure replays with [urcgc_sim replay].

    Everything here is a pure function of the campaign seed: running the
    same campaign twice produces byte-identical JSON. *)

type spec = {
  n : int;  (** group cardinality *)
  k : int;  (** crash-detection retries K *)
  rate : float;  (** per-process submission probability per round *)
  messages : int;  (** global cap on generated messages *)
  send_omission : float;
  recv_omission : float;
  link_loss : float;
  silenced_per_subrun : int;
      (** adversarial burst size; the resilience budget is [t = (n-1)/2] *)
  crashes : (int * int) list;  (** fail-stop schedule as (node, subrun) *)
  max_rtd : float;  (** simulated-time cap *)
}

val pp_spec : Format.formatter -> spec -> unit

val resilience : spec -> int
(** The budget [t = (n-1)/2] for this spec's group size. *)

val within_budget : spec -> bool
(** Whether [silenced_per_subrun] plus the crash count stays within [t]. *)

val validate_spec : spec -> unit
(** Raises [Invalid_argument] with a one-line diagnosis when the spec is
    malformed: group too small, [k < 1], a probability outside [0,1], a
    negative message cap, a silenced count outside [0,n), a crash of a node
    outside the group or at a negative subrun, or a non-positive time cap.
    {!scenario_of_spec} calls this, so both the campaign and the replay
    paths reject bad CLI input instead of silently ignoring it. *)

val fault_of_spec : spec -> Net.Fault.spec

val scenario_of_spec : ?name:string -> seed:int -> spec -> Scenario.t
(** Raises [Invalid_argument] via {!validate_spec} on malformed specs. *)

type outcome = {
  ok : bool;
  violations : string list;
      (** checker violations plus liveness/progress failures *)
}

val evaluate : spec -> Runner.report -> outcome
(** Safety clauses from {!Checker} plus:
    - {b progress}: a run with a positive cap and rate generates messages;
    - {b delivery}: some remote processing happens whenever anything was
      generated and at least two processes exist;
    - {b termination}: a within-budget run with no crash schedule and no
      departures drains completely — every generated message is processed
      at all [n - 1] remote processes before the time cap. *)

val execute :
  ?metrics:Sim.Metrics.t -> ?tracer:Sim.Trace.t -> seed:int -> spec ->
  outcome * Runner.report
(** Build the scenario, run the simulation, evaluate.  [metrics] (default
    {!Sim.Metrics.null}) and [tracer] are forwarded to {!Runner.run}. *)

type shrunk = {
  shrunk_spec : spec;  (** minimal configuration that still fails *)
  shrunk_violations : string list;  (** what the minimal reproducer violates *)
  shrink_steps : int;  (** simulation runs spent shrinking *)
}

val shrink : ?max_steps:int -> ?jobs:int -> seed:int -> spec -> outcome -> shrunk
(** Greedy fixpoint minimization of a failing spec under the same seed:
    bisect the message cap, shed processes, trim the crash schedule, zero or
    halve the omission/loss probabilities, reduce the burst size, tighten
    the time cap — keeping each reduction only if the run still fails in
    the same class (a safety failure never degenerates into a liveness-only
    one, e.g. by truncating a healthy run at a tightened time cap).
    [max_steps] bounds the number of {e recorded} simulation runs
    (default 150).

    With [jobs > 1] each round's candidate list is evaluated speculatively
    in parallel on {!Sim.Pool} and the {e first-accepting candidate in
    candidate order} wins, charged the steps a sequential scan would have
    consumed — so the shrunk spec, its violations, and [shrink_steps] are
    identical at any job count; only wall-clock time changes. *)

type run = {
  index : int;
  seed : int;  (** derived run seed; [urcgc_sim replay] takes this *)
  spec : spec;
  outcome : outcome;
  generated : int;
  delivered_remote : int;
  subruns : int;
  mean_delay_rtd : float;
  shrunk : shrunk option;  (** present iff the run failed and shrinking ran *)
  metrics : string option;
      (** per-run {!Sim.Metrics} registry rendered to JSON; present iff the
          campaign ran with [with_metrics] *)
  analysis : string option;
      (** per-run [Sim.Analysis] report JSON; present iff the campaign ran
          with [with_analysis] *)
  oracle_agrees : bool option;
      (** whether the trace oracle's verdict agrees with the live checker's
          ({!Analyzer.agrees}); present iff [with_analysis] *)
}

type t = {
  campaign_seed : int;
  budget : int;  (** number of runs *)
  over_budget : bool;  (** whether the sweep forces bursts beyond [t] *)
  runs : run list;
  failed : int;
}

val generate : ?over_budget:bool -> Sim.Rng.t -> spec
(** Draw one random configuration.  With [over_budget] (default false) the
    burst size is forced strictly beyond the resilience bound; otherwise
    every draw keeps the total failure count per subrun within [t]. *)

val run :
  ?over_budget:bool -> ?shrink_failures:bool -> ?with_metrics:bool ->
  ?with_analysis:bool -> ?jobs:int -> budget:int -> seed:int -> unit -> t
(** Run a whole campaign.  [shrink_failures] (default true) minimizes every
    failing run.  [with_metrics] (default false) records a fresh
    {!Sim.Metrics} registry per run and embeds its JSON in the report.
    [with_analysis] (default false) traces every run, feeds it through the
    offline [Sim.Analysis] oracle, and embeds the analysis report plus the
    checker-vs-oracle agreement bit.

    [jobs] (default 1) is the {!Sim.Pool} worker count for the parallel
    phases; [0] means the detected core count.  Spec generation stays
    sequential (the draw order of the campaign stream is part of the
    determinism contract), the runs execute in parallel and merge back in
    index order, and failures shrink with speculative parallel candidate
    evaluation — so {!to_json} output is byte-identical at any [jobs],
    including the [with_metrics]/[with_analysis] variants. *)

val repro_command : seed:int -> spec -> string
(** The [urcgc_sim replay ...] command line reproducing this exact run. *)

val to_json : t -> string
(** The full campaign as one deterministic JSON document (schema in
    [docs/CAMPAIGN.md]). *)

val summary_table : t -> Stats.Table.t

val pp_summary : Format.formatter -> t -> unit
