(** Experiment runner: builds a simulated urcgc group from a {!Scenario.t},
    injects the workload, runs to quiescence (or the time cap), and reduces
    the recorded events to the metrics the paper reports. *)

type report = {
  scenario : Scenario.t;
  generated : int;  (** data messages labelled and broadcast *)
  delivered_remote : int;  (** processing events at non-origin processes *)
  delay : Stats.Summary.t;
      (** end-to-end delay of remote processing events, in rtd — Figure 4's D *)
  completion_rtd : float;  (** time of the last processing event *)
  subruns : int;  (** subruns executed *)
  control_msgs : int;
  control_bytes : int;
  control_mean_size : float;
  control_max_size : int;
  data_msgs : int;
  data_bytes : int;
  recovery_msgs : int;
  recovery_bytes : int;
  history_peak : int;  (** max history length over nodes and time *)
  history_series : (int * int) list;
      (** per round: (round, max over nodes of history length) — Figure 6 *)
  waiting_peak : int;
  departures : Urcgc.Cluster.departure list;
  discarded : int;  (** orphaned messages destroyed by agreement *)
  fragments : int;
      (** distinct group views among the surviving processes: 1 is a healthy
          group; more means split-brain by mutual expulsion (possible only
          when the per-subrun failure budget is overrun) *)
  verdict : Checker.verdict;
}

val run : ?tracer:Sim.Tracer.t -> ?metrics:Sim.Metrics.t -> Scenario.t -> report
(** [tracer] collects the typed protocol events (including network drops and
    the fail-stop schedule); [metrics] (default {!Sim.Metrics.null}) is
    populated with the run's counters, per-round depth gauges, and the
    delivery-latency histogram — see [docs/TRACE.md] for the catalogue.
    Neither affects the simulation itself: a traced run and an untraced run
    of the same scenario behave identically. *)

val control_msgs_per_subrun : report -> float
val mean_delay_rtd : report -> float
(** NaN-free: 0 when nothing was delivered. *)

val pp_report : Format.formatter -> report -> unit
