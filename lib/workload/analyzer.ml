(* Bridge between a live run and the offline trace oracle.

   Runs a scenario with an unbounded trace sink, feeds the records through
   Sim.Analysis, and compares the oracle's verdict bit-by-bit against the
   live checker's.  The two are independent implementations over different
   inputs (cluster state vs. the event stream), so agreement is real
   evidence; the campaign property test drives this across randomized
   fault-injected runs. *)

type result = { report : Runner.report; analysis : Sim.Analysis.t }

let run_scenario ?metrics (scenario : Scenario.t) =
  let tracer = Sim.Trace.unbounded () in
  let report = Runner.run ~tracer ?metrics scenario in
  let analysis =
    Sim.Analysis.analyze ~n:scenario.Scenario.config.Urcgc.Config.n
      (Sim.Trace.records tracer)
  in
  { report; analysis }

(* The live checker folds duplicate processing into its causal check (a
   duplicate is never [processable]), and its view-agreement check reads
   member state the trace does not carry; hence the asymmetric mapping. *)
let agrees (checker : Checker.verdict) (oracle : Sim.Analysis.verdict) =
  Bool.equal checker.Checker.causal_ok
    (oracle.Sim.Analysis.causal_ok && oracle.Sim.Analysis.at_most_once_ok)
  && Bool.equal checker.Checker.atomicity_ok oracle.Sim.Analysis.atomicity_ok
  && Bool.equal checker.Checker.zombie_ok oracle.Sim.Analysis.zombie_ok
  && Bool.equal checker.Checker.partition_ok oracle.Sim.Analysis.partition_ok

let pp_disagreement ppf ((checker : Checker.verdict), (oracle : Sim.Analysis.verdict)) =
  Format.fprintf ppf
    "@[<v>checker: causal=%b atomicity=%b zombie=%b partition=%b@,\
     oracle:  causal=%b at_most_once=%b atomicity=%b zombie=%b partition=%b@,\
     checker violations:%a@,oracle violations:%a@]"
    checker.Checker.causal_ok checker.Checker.atomicity_ok
    checker.Checker.zombie_ok checker.Checker.partition_ok
    oracle.Sim.Analysis.causal_ok oracle.Sim.Analysis.at_most_once_ok
    oracle.Sim.Analysis.atomicity_ok oracle.Sim.Analysis.zombie_ok
    oracle.Sim.Analysis.partition_ok
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun ppf v ->
         Format.fprintf ppf "  - %s" v))
    checker.Checker.violations
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun ppf v ->
         Format.fprintf ppf "  - %s" v))
    oracle.Sim.Analysis.violations
