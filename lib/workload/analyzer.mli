(** Bridge between a live run and the offline trace oracle.

    {!run_scenario} executes a scenario with an unbounded trace sink and
    analyzes the resulting event stream, so callers get both the live
    {!Checker} verdict (inside the report) and the independent
    [Sim.Analysis] one; {!agrees} is the cross-validation predicate the
    campaign property test enforces run by run. *)

type result = { report : Runner.report; analysis : Sim.Analysis.t }

val run_scenario : ?metrics:Sim.Metrics.t -> Scenario.t -> result
(** Run [scenario] with tracing on and analyze the trace.  The analyzer is
    given the scenario's configured group size, so silent members still
    count toward atomicity. *)

val agrees : Checker.verdict -> Sim.Analysis.verdict -> bool
(** Bit-by-bit agreement between the live checker and the trace oracle:
    the checker's [causal_ok] corresponds to the oracle's
    [causal_ok && at_most_once_ok] (the live replay treats a duplicate as a
    causal-order failure), and [atomicity_ok]/[zombie_ok] map directly.
    View agreement is not derivable from the trace and is excluded. *)

val pp_disagreement :
  Format.formatter -> Checker.verdict * Sim.Analysis.verdict -> unit
(** Diagnostic rendering for a failed {!agrees}: both verdicts and both
    violation lists. *)
