type report = {
  scenario : Scenario.t;
  generated : int;
  delivered_remote : int;
  delay : Stats.Summary.t;
  completion_rtd : float;
  subruns : int;
  control_msgs : int;
  control_bytes : int;
  control_mean_size : float;
  control_max_size : int;
  data_msgs : int;
  data_bytes : int;
  recovery_msgs : int;
  recovery_bytes : int;
  history_peak : int;
  history_series : (int * int) list;
  waiting_peak : int;
  departures : Urcgc.Cluster.departure list;
  discarded : int;
  fragments : int;
  verdict : Checker.verdict;
}

(* Workload injection: fires after every round, submits according to the load
   model, and reports whether the global cap has been reached. *)
let make_injector (scenario : Scenario.t) cluster rng =
  let load = scenario.load in
  (* Over the codec boundary the int payloads encode to exactly 8 bytes, and
     the codec refuses size lies. *)
  let payload_size =
    if scenario.codec_boundary then 8 else load.Load.payload_size
  in
  let senders =
    match load.Load.senders with
    | Some senders -> senders
    | None -> Net.Node_id.group scenario.config.Urcgc.Config.n
  in
  let produced = ref 0 in
  let cap_reached () =
    match load.Load.total_messages with
    | None -> false
    | Some cap -> !produced >= cap
  in
  let deps_for node =
    match load.Load.deps_mode with
    | Load.Frontier -> None
    | Load.Own_chain -> Some []
    | Load.Random_frontier p ->
        let member = Urcgc.Cluster.member cluster node in
        let n = scenario.config.Urcgc.Config.n in
        let deps = ref [] in
        for j = 0 to n - 1 do
          let origin = Net.Node_id.of_int j in
          if not (Net.Node_id.equal origin node) then begin
            let seq = Urcgc.Member.last_processed member origin in
            if seq > 0 && Sim.Rng.bool rng p then
              deps := Causal.Mid.make ~origin ~seq :: !deps
          end
        done;
        Some !deps
  in
  let inject ~round:_ =
    if !Sim.Prof.on then Sim.Prof.enter "runner.inject";
    List.iter
      (fun node ->
        if (not (cap_reached ())) && Sim.Rng.bool rng load.Load.rate then begin
          let member = Urcgc.Cluster.member cluster node in
          if Urcgc.Member.active member then begin
            incr produced;
            Urcgc.Cluster.submit ?deps:(deps_for node) ~size:payload_size
              cluster node !produced
          end
        end)
      senders;
    if !Sim.Prof.on then Sim.Prof.exit ()
  in
  (inject, cap_reached, produced)

let run ?tracer ?(metrics = Sim.Metrics.null) (scenario : Scenario.t) =
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.create ~seed:scenario.seed in
  let fault = Net.Fault.create scenario.fault ~rng:(Sim.Rng.split rng) in
  (* Keep a handle on the raw network component: the medium abstracts it
     away, but the trace sink and the metrics counters need it. *)
  let medium, net_dropped, net_retransmissions, net_fragments, net_set_trace =
    match scenario.mount with
    | Scenario.Datagram ->
        let net =
          Net.Netsim.create ?latency:scenario.latency engine ~fault
            ~rng:(Sim.Rng.split rng) ()
        in
        ( Urcgc.Medium.of_netsim net,
          (fun () -> Net.Netsim.dropped_count net),
          (fun () -> 0),
          (fun () -> 0),
          fun trace -> Net.Netsim.set_trace net trace )
    | Scenario.Transport h ->
        let transport =
          Net.Transport.create ?latency:scenario.latency engine ~fault
            ~rng:(Sim.Rng.split rng) ()
        in
        ( Urcgc.Medium.of_transport ~h transport,
          (fun () -> Net.Transport.dropped_count transport),
          (fun () -> Net.Transport.retransmissions transport),
          (fun () -> Net.Transport.fragments_sent transport),
          fun trace -> Net.Transport.set_trace transport trace )
  in
  (match tracer with
  | Some trace when Sim.Trace.enabled trace ->
      net_set_trace trace;
      (* Narrate the fail-stop schedule: one Crash event at each scheduled
         time.  The callbacks touch only the trace sink, so enabling tracing
         cannot perturb the run itself. *)
      List.iter
        (fun (node, time) ->
          ignore
            (Sim.Engine.schedule_after engine ~delay:time (fun () ->
                 Sim.Trace.emit trace ~time
                   (Sim.Trace.Crash { node = Net.Node_id.to_int node }))))
        scenario.fault.Net.Fault.crashes
  | Some _ | None -> ());
  let medium =
    if scenario.codec_boundary then
      (* Workload payloads are ints; encode them as fixed-width strings so
         the declared payload size is honored on the wire. *)
      let int_codec =
        {
          Net.Bytebuf.encode =
            (fun value ->
              let raw = Bytes.create 8 in
              Bytes.set_int64_be raw 0 (Int64.of_int value);
              raw);
          decode =
            (fun raw ->
              if Bytes.length raw <> 8 then Error "int payload: wrong size"
              else Ok (Int64.to_int (Bytes.get_int64_be raw 0)));
        }
      in
      Urcgc.Medium.with_codec int_codec medium
    else medium
  in
  let cluster =
    Urcgc.Cluster.create_with_medium ?tracer ~config:scenario.config ~medium ()
  in
  let inject, cap_reached, _produced = make_injector scenario cluster rng in
  Urcgc.Cluster.on_round cluster inject;
  (* Sampling: per-round maxima of history and waiting-list lengths. *)
  let history_series = ref [] in
  let history_peak = ref 0 in
  let waiting_peak = ref 0 in
  Urcgc.Cluster.on_round cluster (fun ~round ->
      if !Sim.Prof.on then Sim.Prof.enter "runner.sample";
      let history_max = ref 0 and waiting_max = ref 0 in
      List.iter
        (fun member ->
          if Urcgc.Member.active member then begin
            history_max := max !history_max (Urcgc.Member.history_length member);
            waiting_max := max !waiting_max (Urcgc.Member.waiting_length member)
          end)
        (Urcgc.Cluster.members cluster);
      history_series := (round, !history_max) :: !history_series;
      history_peak := max !history_peak !history_max;
      waiting_peak := max !waiting_peak !waiting_max;
      if Sim.Metrics.enabled metrics then begin
        Sim.Metrics.set_gauge metrics "history.occupancy" !history_max;
        Sim.Metrics.set_gauge metrics "waiting.depth" !waiting_max;
        Sim.Metrics.observe metrics "history.occupancy_per_round"
          (float_of_int !history_max);
        Sim.Metrics.observe metrics "waiting.depth_per_round"
          (float_of_int !waiting_max)
      end;
      if !Sim.Prof.on then Sim.Prof.exit ());
  Urcgc.Cluster.start cluster;
  (* Advance one rtd at a time until the workload is exhausted and the group
     is quiescent, or the time cap is hit. *)
  let max_ticks = Sim.Ticks.of_rtd scenario.max_rtd in
  let rtd = Sim.Ticks.of_int Sim.Ticks.per_rtd in
  let rec advance () =
    let now = Sim.Engine.now engine in
    if Sim.Ticks.(now >= max_ticks) then ()
    else begin
      let target = Sim.Ticks.add now rtd in
      let target = if Sim.Ticks.(max_ticks < target) then max_ticks else target in
      Sim.Engine.run engine ~until:target;
      if cap_reached () && Urcgc.Cluster.quiescent cluster then ()
      else advance ()
    end
  in
  if !Sim.Prof.on then Sim.Prof.enter "runner.run";
  advance ();
  if !Sim.Prof.on then Sim.Prof.exit ();
  (* Reduce the event log to the report. *)
  if !Sim.Prof.on then Sim.Prof.enter "runner.reduce";
  let generations = Urcgc.Cluster.generations cluster in
  let sent_at =
    List.fold_left
      (fun acc { Urcgc.Cluster.mid; sent_at; _ } ->
        Causal.Mid.Map.add mid sent_at acc)
      Causal.Mid.Map.empty generations
  in
  let deliveries = Urcgc.Cluster.deliveries cluster in
  let remote =
    List.filter
      (fun { Urcgc.Cluster.node; msg; _ } ->
        not (Net.Node_id.equal node (Causal.Mid.origin msg.Causal.Causal_msg.mid)))
      deliveries
  in
  let delays =
    List.filter_map
      (fun { Urcgc.Cluster.msg; at; _ } ->
        match Causal.Mid.Map.find_opt msg.Causal.Causal_msg.mid sent_at with
        | None -> None
        | Some t0 -> Some (Sim.Ticks.to_rtd (Sim.Ticks.diff at t0)))
      remote
  in
  let completion_rtd =
    List.fold_left
      (fun acc { Urcgc.Cluster.at; _ } -> Float.max acc (Sim.Ticks.to_rtd at))
      0.0 deliveries
  in
  let traffic = Urcgc.Medium.traffic medium in
  let fragments =
    Urcgc.Cluster.active_members cluster
    |> List.map (fun node ->
           Causal.Group_view.alive_array
             (Urcgc.Member.view (Urcgc.Cluster.member cluster node)))
    |> List.sort_uniq compare |> List.length
  in
  let discarded =
    List.fold_left
      (fun acc (_, mids, _) -> acc + List.length mids)
      0
      (Urcgc.Cluster.discards cluster)
  in
  if Sim.Metrics.enabled metrics then begin
    Sim.Metrics.incr metrics ~by:(List.length generations) "messages.generated";
    Sim.Metrics.incr metrics ~by:(List.length remote) "deliveries.remote";
    Sim.Metrics.incr metrics ~by:discarded "messages.discarded";
    Sim.Metrics.incr metrics
      ~by:(List.length (Urcgc.Cluster.departures cluster))
      "departures";
    Sim.Metrics.incr metrics ~by:(net_dropped ()) "net.drops";
    Sim.Metrics.incr metrics ~by:(net_retransmissions ()) "net.retransmissions";
    Sim.Metrics.incr metrics ~by:(net_fragments ()) "net.fragments_sent";
    List.iter (Sim.Metrics.observe metrics "delivery.latency_rtd") delays
  end;
  let report = {
    scenario;
    generated = List.length generations;
    delivered_remote = List.length remote;
    delay = Stats.Summary.of_list delays;
    completion_rtd;
    subruns = Urcgc.Cluster.subrun cluster;
    control_msgs = Net.Traffic.count traffic Net.Traffic.Control;
    control_bytes = Net.Traffic.bytes traffic Net.Traffic.Control;
    control_mean_size = Net.Traffic.mean_size traffic Net.Traffic.Control;
    control_max_size = Net.Traffic.max_size traffic Net.Traffic.Control;
    data_msgs = Net.Traffic.count traffic Net.Traffic.Data;
    data_bytes = Net.Traffic.bytes traffic Net.Traffic.Data;
    recovery_msgs = Net.Traffic.count traffic Net.Traffic.Recovery;
    recovery_bytes = Net.Traffic.bytes traffic Net.Traffic.Recovery;
    history_peak = !history_peak;
    history_series = List.rev !history_series;
    waiting_peak = !waiting_peak;
    departures = Urcgc.Cluster.departures cluster;
    discarded;
    fragments;
    verdict = Checker.check cluster;
  } in
  if !Sim.Prof.on then Sim.Prof.exit ();
  report

let control_msgs_per_subrun report =
  if report.subruns = 0 then 0.0
  else float_of_int report.control_msgs /. float_of_int report.subruns

let mean_delay_rtd report =
  if report.delay.Stats.Summary.count = 0 then 0.0
  else report.delay.Stats.Summary.mean

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v 2>%s:@ generated=%d delivered_remote=%d@ mean delay=%.3f rtd (p95 \
     %.3f)@ completion=%.1f rtd over %d subruns@ control: %d msgs, mean %.0f \
     B, max %d B@ recovery: %d msgs@ history peak=%d waiting peak=%d@ \
     departures=%d discarded=%d@ %a@]"
    r.scenario.Scenario.name r.generated r.delivered_remote
    (mean_delay_rtd r) r.delay.Stats.Summary.p95 r.completion_rtd r.subruns
    r.control_msgs r.control_mean_size r.control_max_size r.recovery_msgs
    r.history_peak r.waiting_peak
    (List.length r.departures)
    r.discarded Checker.pp r.verdict
