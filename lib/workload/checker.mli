(** Post-run verification of the URCGC correctness clauses (Definition 3.2).

    The checker replays the recorded processing events and verifies:
    - {b causal ordering}: at every process, every processed message was
      processable at the moment it was processed (its origin chain was
      gap-free and all explicit dependencies already processed);
    - {b uniform atomicity} among survivors: all processes active at the end
      of the run processed exactly the same set of messages;
    - {b no zombie processing}: a message discarded by group agreement was
      never processed by a surviving process, and no process processed
      anything at a tick strictly after it left the group;
    - {b view agreement}: all surviving processes hold the same group view
      (Section 4, assumption 4);
    - {b primary partition}: no member departed with reason
      {!Urcgc.Member.Partitioned}.  Such a departure means a member's
      adopted view degenerated to itself alone, i.e. the group lost its
      primary partition — impossible within the fault budget
      (silenced + crashed <= t) and therefore the detectable liveness
      signature of beyond-budget fault load. *)

type verdict = {
  causal_ok : bool;
  atomicity_ok : bool;
      (** survivors processed the same message sets (set equality only; the
          zombie and view clauses report separately below) *)
  zombie_ok : bool;
  views_ok : bool;
  partition_ok : bool;
  violations : string list;  (** human-readable description of each failure *)
}

val ok : verdict -> bool
(** All five clauses hold.  The clauses are separate fields so the
    trace-level oracle ({!Sim.Analysis}) can be cross-validated bit by bit:
    it can witness causality, atomicity, zombie processing, and partition
    departures from events alone, but not view agreement (per-node view
    state is never traced). *)

val check : 'a Urcgc.Cluster.t -> verdict

val pp : Format.formatter -> verdict -> unit
