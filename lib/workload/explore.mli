(** Bounded schedule exploration of the urcgc protocol.

    This is the harness side of {!Sim.Explore}: a {!config} describes a tiny
    protocol run (group size, a fixed message program, a fault menu) and a
    {e choice window} of subruns within which every source of
    nondeterminism is enumerated exhaustively:

    - {b crash timing}: no crash, or one fail-stop of any node before any
      round of the window (in addition to [fixed_crashes]);
    - {b omission placement}: no omission, or the loss of exactly one of the
      first [omission_choices] packet copies offered to the network;
    - {b silencing}: an adversarial send-omission burst set of
      [silenced] nodes chosen independently for every window subrun (the
      paper's per-subrun adversary).  What happens beyond the window is
      governed by {!silence_mode}: under [Persistent] (the default) the
      last chosen set persists until the horizon — the harshest sustained
      adversary, the one campaign reproducers shrink to — while under
      [Window] the burst ends with the window and the group runs fault-free
      afterwards;
    - {b delivery order}: within the window, whenever several packets are
      pending at a destination, every permutation of their delivery order —
      modulo the commutativity pruning below.

    Outside the window the run continues deterministically (canonical
    first-in-first-out delivery, no further faults) until the horizon, so
    liveness clauses can be checked on every explored schedule.

    The network is a {e controlled} medium mounted under the unchanged
    protocol stack via {!Urcgc.Medium.make}: packets are buffered in
    per-destination queues and handed over at the end of each protocol
    round in an order picked by the search driver, instead of being
    scheduled by sampled latency.  One protocol round of the simulator is
    one "step" of the explored transition system.

    {b Pruning rule} (DPOR-style, matching the commutativity arguments in
    [docs/EXPLORE.md]): deliveries at different destinations are never
    permuted at all (destinations drain in fixed node order — they commute
    because a delivery at [p] cannot affect the state of [q], and data
    deliveries trigger no sends); at a single destination, delivering data
    packet [x] immediately after data packet [u] is pruned when they
    originate at different senders, neither depends directly on the other,
    and [u] was enqueued after [x] — the swapped order was enumerated from
    an earlier branch and leads to an equivalent run.  Control PDUs
    (requests, decisions, recovery) never commute.  Soundness is enforced
    empirically by the test suite: pruned and brute-force exploration must
    report the same violation set.

    Every explored schedule is judged by {!Checker.check}, by liveness
    clauses (quiescence at the horizon; complete remote delivery when no
    fault was injected), and — optionally — by the independent
    {!Sim.Analysis} trace oracle cross-validated via {!Analyzer.agrees}. *)

type silence_mode =
  | Window  (** the burst ends with the window: fault-free thereafter *)
  | Persistent
      (** the last window set keeps applying until the horizon (default) *)

type config = {
  n : int;  (** group cardinality *)
  k : int;  (** crash-detection retries K *)
  messages : int;
      (** fixed message program: message [j] is submitted by node
          [j mod n] at the start of subrun [j / n] *)
  window_subruns : int;  (** subruns with explored nondeterminism *)
  horizon_subruns : int;  (** total run length; must exceed the window *)
  crash_choices : bool;
      (** enumerate one optional fail-stop anywhere in the window *)
  fixed_crashes : (int * int) list;
      (** always-applied fail-stops as [(node, round)] — the node stops
          before the given protocol round (two rounds per subrun) *)
  omission_choices : int;
      (** enumerate losing one of the first this-many offered packet
          copies (0 disables omission branching) *)
  silenced : int;  (** adversarial burst size per window subrun *)
  silence_mode : silence_mode;
      (** whether the last window burst persists beyond the window;
          irrelevant when [silenced = 0] *)
  max_deliveries_per_round : int;
      (** safety valve against same-round delivery cascades; exceeding it
          is reported as a violation *)
  with_oracle : bool;  (** run the {!Sim.Analysis} oracle per schedule *)
}

val config :
  ?k:int ->
  ?messages:int ->
  ?window_subruns:int ->
  ?horizon_subruns:int ->
  ?crash_choices:bool ->
  ?fixed_crashes:(int * int) list ->
  ?omission_choices:int ->
  ?silenced:int ->
  ?silence_mode:silence_mode ->
  ?max_deliveries_per_round:int ->
  ?with_oracle:bool ->
  n:int ->
  unit ->
  config
(** Defaults: [k = 2], [messages = n], [window_subruns = 1],
    [horizon_subruns = window_subruns + 2k + 4] (long enough for expulsion
    and autonomous departure to settle), no crash branching, no fixed
    crashes, no omissions, no silencing (mode [Persistent]),
    [max_deliveries_per_round = 256], oracle on.  Raises
    [Invalid_argument] (via {!validate}) on malformed values. *)

val validate : config -> unit
(** Raises [Invalid_argument] with a one-line diagnosis unless: [2 <= n],
    [1 <= k], [0 <= messages <= n * window_subruns] (the message program
    must fit the window), [1 <= window_subruns < horizon_subruns],
    [0 <= silenced < n], [0 <= omission_choices], every fixed crash names a
    node in range at a round before the horizon, and
    [max_deliveries_per_round >= 1]. *)

type run_result = {
  violations : string list;
      (** checker + liveness + oracle clauses broken by this schedule *)
  generated : int;
  delivered_remote : int;
  rounds : int;  (** protocol rounds actually executed (early stop) *)
  departures : (int * string) list;
      (** members that left the group, as [(node, reason)] in departure
          order — e.g. [(0, "decision silence")] *)
  oracle_agrees : bool option;  (** [None] when the oracle is off *)
  cascade_capped : bool;
}

val run_schedule : config -> Sim.Explore.Ctx.t -> run_result
(** The harness handed to {!Sim.Explore}: build a fresh cluster on the
    controlled medium, consult the context at every choice point, run to
    the horizon (or to quiescence after the window), judge.  A pure
    function of the choice sequence. *)

type counterexample = { cx_schedule : int list; cx_violations : string list }

type report = {
  config : config;
  prune : bool;
  max_schedules : int;
  stats : Sim.Explore.stats;
  schedules_with_violations : int;
  distinct_violations : string list;  (** sorted, deduplicated *)
  counterexample : counterexample option;
      (** first violating schedule in depth-first order — the
          lexicographically minimal one *)
  oracle_checked : int;
  oracle_disagreements : int;
}

val ok : report -> bool
(** No schedule violated anything and the search was not truncated. *)

val explore : ?prune:bool -> ?max_schedules:int -> config -> report
(** Enumerate every schedule of [config] (defaults: pruning on, budget
    200_000 schedules).  Deterministic: same config, same report,
    byte-identical {!to_json} on any compiler. *)

val replay :
  config -> schedule:int list -> run_result * Sim.Explore.step list
(** Re-execute one schedule (e.g. a reported counterexample) and return its
    verdict together with the labelled decision log. *)

val repro_command : config -> schedule:int list -> string
(** The [urcgc_sim explore --replay-schedule ...] invocation reproducing a
    schedule. *)

val of_campaign_spec : ?window_subruns:int -> Campaign.spec -> config option
(** Map a (typically shrunk) campaign reproducer onto an explorer config
    with the same group size, detection constant, silencing burst and crash
    schedule, clipping the message program to the window (default 2
    subruns).  [None] when the spec uses probabilistic omissions or link
    loss, which have no bounded-choice counterpart. *)

val to_json : report -> string
(** Canonical single-line JSON; fixed field order and number formatting,
    byte-identical across compilers.  Schema in [docs/EXPLORE.md]. *)

val pp_report : Format.formatter -> report -> unit
