(* Bounded schedule exploration: a controlled network under the unchanged
   protocol stack, with every nondeterministic decision routed through
   Sim.Explore.Ctx.  See explore.mli and docs/EXPLORE.md for the model. *)

type silence_mode = Window | Persistent

type config = {
  n : int;
  k : int;
  messages : int;
  window_subruns : int;
  horizon_subruns : int;
  crash_choices : bool;
  fixed_crashes : (int * int) list;
  omission_choices : int;
  silenced : int;
  silence_mode : silence_mode;
  max_deliveries_per_round : int;
  with_oracle : bool;
}

let validate c =
  let fail fmt = Printf.ksprintf invalid_arg fmt in
  if c.n < 2 then fail "Explore: n must be at least 2 (got %d)" c.n;
  if c.k < 1 then fail "Explore: k must be positive (got %d)" c.k;
  if c.window_subruns < 1 then
    fail "Explore: window must be at least one subrun (got %d)"
      c.window_subruns;
  if c.horizon_subruns <= c.window_subruns then
    fail "Explore: horizon (%d subruns) must exceed the window (%d)"
      c.horizon_subruns c.window_subruns;
  if c.messages < 0 || c.messages > c.n * c.window_subruns then
    fail
      "Explore: the message program (%d messages) must fit the window (at \
       most n * window = %d)"
      c.messages
      (c.n * c.window_subruns);
  if c.silenced < 0 || c.silenced >= c.n then
    fail "Explore: silenced burst %d outside [0, n)" c.silenced;
  if c.omission_choices < 0 then
    fail "Explore: omission_choices must be non-negative (got %d)"
      c.omission_choices;
  if c.max_deliveries_per_round < 1 then
    fail "Explore: max_deliveries_per_round must be positive (got %d)"
      c.max_deliveries_per_round;
  List.iter
    (fun (node, round) ->
      if node < 0 || node >= c.n then
        fail "Explore: fixed crash of node %d outside the group" node;
      if round < 0 || round >= 2 * c.horizon_subruns then
        fail "Explore: fixed crash at round %d outside the horizon" round)
    c.fixed_crashes

let config ?(k = 2) ?messages ?(window_subruns = 1) ?horizon_subruns
    ?(crash_choices = false) ?(fixed_crashes = []) ?(omission_choices = 0)
    ?(silenced = 0) ?(silence_mode = Persistent)
    ?(max_deliveries_per_round = 256) ?(with_oracle = true) ~n () =
  let messages = match messages with Some m -> m | None -> n in
  let horizon_subruns =
    match horizon_subruns with
    | Some h -> h
    | None -> window_subruns + (2 * k) + 4
  in
  let c =
    {
      n;
      k;
      messages;
      window_subruns;
      horizon_subruns;
      crash_choices;
      fixed_crashes;
      omission_choices;
      silenced;
      silence_mode;
      max_deliveries_per_round;
      with_oracle;
    }
  in
  validate c;
  c

(* Lexicographically ordered [size]-subsets of [0, n), as sorted lists.
   The subset order is part of the schedule encoding, so it must never
   change. *)
let subsets ~n ~size =
  let rec build lo size =
    if size = 0 then [ [] ]
    else
      let rec from i acc =
        if i > n - size then List.rev acc
        else
          let tails = build (i + 1) (size - 1) in
          from (i + 1)
            (List.rev_append (List.map (fun t -> i :: t) tails) acc)
      in
      from lo []
  in
  Array.of_list (build 0 size)

let traffic_class kind =
  match kind with
  | Net.Traffic.Data -> Sim.Trace.Traffic_class.Data
  | Net.Traffic.Control -> Sim.Trace.Traffic_class.Control
  | Net.Traffic.Recovery -> Sim.Trace.Traffic_class.Recovery
  | Net.Traffic.Ack -> Sim.Trace.Traffic_class.Ack

(* One buffered packet of the controlled network.  [canon] is the global
   enqueue index: per-destination queues are FIFO in canon order, and the
   pruning rule compares canons to recognize out-of-order commuting pairs. *)
type pkt = {
  canon : int;
  src : int;
  dst : int;
  body : int Urcgc.Wire.body;
}

let describe_body body =
  match body with
  | Urcgc.Wire.Data m ->
      let mid = m.Causal.Causal_msg.mid in
      Printf.sprintf "d%d#%d"
        (Net.Node_id.to_int (Causal.Mid.origin mid))
        (Causal.Mid.seq mid)
  | Urcgc.Wire.Request r ->
      Printf.sprintf "req%d" (Net.Node_id.to_int r.Urcgc.Wire.sender)
  | Urcgc.Wire.Decision_pdu d -> Printf.sprintf "dec@%d" d.Urcgc.Decision.subrun
  | Urcgc.Wire.Recover_req _ -> "rreq"
  | Urcgc.Wire.Recover_reply _ -> "rrep"

(* Commuting data pair: different origins and no direct causal link either
   way.  Everything else (control PDUs, causally linked or same-origin
   data) must keep both orders. *)
let commutes a b =
  match (a.body, b.body) with
  | Urcgc.Wire.Data ma, Urcgc.Wire.Data mb ->
      let oa = Causal.Mid.origin ma.Causal.Causal_msg.mid
      and ob = Causal.Mid.origin mb.Causal.Causal_msg.mid in
      (not (Net.Node_id.equal oa ob))
      && (not (Causal.Causal_msg.depends_on ma mb.Causal.Causal_msg.mid))
      && not (Causal.Causal_msg.depends_on mb ma.Causal.Causal_msg.mid)
  | _ -> false

type run_result = {
  violations : string list;
  generated : int;
  delivered_remote : int;
  rounds : int;
  departures : (int * string) list;
  oracle_agrees : bool option;
  cascade_capped : bool;
}

let tick_of_round r = Sim.Ticks.mul Sim.Ticks.round r

let run_schedule c ctx =
  validate c;
  if !Sim.Prof.on then Sim.Prof.enter "schedule";
  let n = c.n in
  let window_rounds = 2 * c.window_subruns in
  (* -- upfront choices: crash timing, omission placement, silencing ---- *)
  let crashes =
    let chosen =
      if not c.crash_choices then []
      else
        let pick =
          Sim.Explore.Ctx.choose
            ~arity:(1 + (n * window_rounds))
            ~label:(fun () ->
              Printf.sprintf "crash (0 = none, else node*%d+round+1)"
                window_rounds)
            ctx
        in
        if pick = 0 then []
        else [ ((pick - 1) / window_rounds, (pick - 1) mod window_rounds) ]
    in
    chosen @ c.fixed_crashes
  in
  let omission_slot =
    if c.omission_choices = 0 then -1
    else
      Sim.Explore.Ctx.choose
        ~arity:(1 + c.omission_choices)
        ~label:(fun () -> "omission slot (0 = none, else copy index + 1)")
        ctx
      - 1
  in
  let silenced_sets =
    if c.silenced = 0 then [||]
    else
      let menu = subsets ~n ~size:c.silenced in
      Array.init c.window_subruns (fun subrun ->
          let pick =
            Sim.Explore.Ctx.choose ~arity:(Array.length menu)
              ~label:(fun () ->
                Printf.sprintf "silenced set for subrun %d" subrun)
              ctx
          in
          let set = Array.make n false in
          List.iter (fun i -> set.(i) <- true) menu.(pick);
          set)
  in
  (* -- the controlled network ------------------------------------------ *)
  let engine = Sim.Engine.create () in
  let fault =
    Net.Fault.create
      (Net.Fault.with_crashes
         (List.map
            (fun (node, round) ->
              (Net.Node_id.of_int node, tick_of_round round))
            crashes)
         Net.Fault.reliable)
      ~rng:(Sim.Rng.create ~seed:0)
  in
  let traffic = Net.Traffic.create () in
  let trace =
    if c.with_oracle then Sim.Trace.unbounded () else Sim.Trace.null
  in
  let handlers = Array.make n (fun (_ : int Urcgc.Wire.body) -> ()) in
  let queues = Array.make n [] in
  let pending = ref 0 in
  let canon = ref 0 in
  let copies = ref 0 in
  let silenced_now src =
    if c.silenced = 0 then false
    else
      let subrun =
        Sim.Ticks.to_int (Sim.Engine.now engine) / Sim.Ticks.per_rtd
      in
      match c.silence_mode with
      | Persistent -> silenced_sets.(min subrun (c.window_subruns - 1)).(src)
      | Window ->
          subrun < c.window_subruns && silenced_sets.(subrun).(src)
  in
  let emit_drop ~src ~dst ~kind stage =
    if Sim.Trace.enabled trace then
      Sim.Trace.emit trace
        ~time:(Sim.Engine.now engine)
        (Sim.Trace.Drop { src; dst; kind = traffic_class kind; stage })
  in
  let send ~src ~dst body =
    let kind = Urcgc.Wire.kind body and size = Urcgc.Wire.body_size body in
    Net.Traffic.record traffic ~kind ~size;
    let now = Sim.Engine.now engine in
    let si = Net.Node_id.to_int src and di = Net.Node_id.to_int dst in
    if Net.Fault.crashed fault ~now src || silenced_now si then
      emit_drop ~src:si ~dst:di ~kind Sim.Trace.On_send
    else begin
      let slot = !copies in
      incr copies;
      if slot = omission_slot then
        emit_drop ~src:si ~dst:di ~kind Sim.Trace.On_filter
      else begin
        let packet = { canon = !canon; src = si; dst = di; body } in
        incr canon;
        queues.(di) <- queues.(di) @ [ packet ];
        incr pending
      end
    end
  in
  let medium =
    Urcgc.Medium.make ~engine ~fault
      ~traffic:(fun () -> traffic)
      ~attach:(fun node handler ->
        handlers.(Net.Node_id.to_int node) <- handler)
      ~send
      ~multicast:(fun ~src ~dsts body ->
        Array.iter (fun dst -> send ~src ~dst body) dsts)
  in
  (* -- the protocol stack ---------------------------------------------- *)
  let cluster =
    Urcgc.Cluster.create_with_medium ~tracer:trace
      ~config:(Urcgc.Config.make ~k:c.k ~n ())
      ~medium ()
  in
  (* Fixed message program: message j at node (j mod n), subrun (j / n).
     Subrun-0 submissions happen before the clock starts; later ones after
     the preceding round completes. *)
  for j = 0 to min c.messages n - 1 do
    Urcgc.Cluster.submit cluster (Net.Node_id.of_int (j mod n)) (j + 1)
  done;
  Urcgc.Cluster.on_round cluster (fun ~round ->
      if round mod 2 = 1 then begin
        let subrun = (round + 1) / 2 in
        for j = 0 to c.messages - 1 do
          if j / n = subrun then
            Urcgc.Cluster.submit cluster (Net.Node_id.of_int (j mod n)) (j + 1)
        done
      end);
  (* -- drive rounds, draining deliveries in an explored order ---------- *)
  let cascade_capped = ref false in
  let deliver packet =
    decr pending;
    let now = Sim.Engine.now engine in
    if Net.Fault.crashed fault ~now (Net.Node_id.of_int packet.dst) then
      emit_drop ~src:packet.src ~dst:packet.dst
        ~kind:(Urcgc.Wire.kind packet.body)
        Sim.Trace.On_recv
    else handlers.(packet.dst) packet.body
  in
  let drain round =
    let in_window = round < window_rounds in
    let last = Array.make n None in
    let delivered = ref 0 in
    let rec next_dst di = if di >= n then None
      else if queues.(di) <> [] then Some di
      else next_dst (di + 1)
    in
    let rec loop () =
      match next_dst 0 with
      | None -> ()
      | Some di ->
          if !delivered > c.max_deliveries_per_round then begin
            (* Runaway same-round cascade: abandon the queued packets and
               report loudly rather than looping forever. *)
            cascade_capped := true;
            Array.iteri
              (fun i q -> pending := !pending - List.length q;
                queues.(i) <- [];
                ignore q)
              queues
          end
          else begin
            let arr = Array.of_list queues.(di) in
            let arity = Array.length arr in
            let dst_crashed =
              Net.Fault.crashed fault ~now:(Sim.Engine.now engine)
                (Net.Node_id.of_int di)
            in
            let pick =
              if arity = 1 || (not in_window) || dst_crashed then 0
              else
                Sim.Explore.Ctx.choose ~arity
                  ~allowed:(fun j ->
                    match last.(di) with
                    | Some prev
                      when commutes prev arr.(j)
                           && prev.canon > arr.(j).canon ->
                        false
                    | _ -> true)
                  ~label:(fun () ->
                    Printf.sprintf "deliver at p%d from {%s}" di
                      (String.concat " "
                         (List.map
                            (fun p -> describe_body p.body)
                            (Array.to_list arr))))
                  ctx
            in
            let packet = arr.(pick) in
            queues.(di) <-
              List.filteri (fun j _ -> j <> pick) (Array.to_list arr);
            last.(di) <- Some packet;
            incr delivered;
            deliver packet;
            loop ()
          end
    in
    loop ()
  in
  let last_crash_round =
    List.fold_left (fun acc (_, round) -> max acc round) (-1) crashes
  in
  let submissions_done_round =
    if c.messages = 0 then 0 else 2 * ((c.messages - 1) / n)
  in
  let total_rounds = 2 * c.horizon_subruns in
  Urcgc.Cluster.start cluster;
  let rounds = ref 0 in
  let stop = ref false in
  while (not !stop) && !rounds < total_rounds do
    let r = !rounds in
    if Sim.Trace.enabled trace then
      List.iter
        (fun (node, cr) ->
          if cr = r then
            Sim.Trace.emit trace ~time:(tick_of_round r)
              (Sim.Trace.Crash { node }))
        crashes;
    ignore (Sim.Engine.step engine);
    drain r;
    incr rounds;
    if
      !rounds >= window_rounds
      && !rounds > submissions_done_round
      && !rounds > last_crash_round
      && !pending = 0
      && Urcgc.Cluster.quiescent cluster
    then stop := true
  done;
  (* -- judge ----------------------------------------------------------- *)
  let verdict = Checker.check cluster in
  let generated = List.length (Urcgc.Cluster.generations cluster) in
  let delivered_remote =
    List.length
      (List.filter
         (fun d ->
           not
             (Net.Node_id.equal d.Urcgc.Cluster.node
                (Causal.Mid.origin d.Urcgc.Cluster.msg.Causal.Causal_msg.mid)))
         (Urcgc.Cluster.deliveries cluster))
  in
  let fault_free =
    crashes = [] && omission_slot < 0 && c.silenced = 0
  in
  let liveness = ref [] in
  let addl fmt = Printf.ksprintf (fun s -> liveness := s :: !liveness) fmt in
  if not (Urcgc.Cluster.quiescent cluster && !pending = 0) then
    addl "liveness: not quiescent at the horizon (%d subruns)"
      c.horizon_subruns;
  if fault_free && generated <> c.messages then
    addl "progress: %d of %d messages generated in a fault-free run"
      generated c.messages;
  if fault_free && delivered_remote <> generated * (n - 1) then
    addl
      "delivery: %d of %d remote processing events in a fault-free run"
      delivered_remote
      (generated * (n - 1));
  if !cascade_capped then
    addl "explore: same-round delivery cascade exceeded %d"
      c.max_deliveries_per_round;
  let oracle_agrees, oracle_violations =
    if not c.with_oracle then (None, [])
    else
      let analysis = Sim.Analysis.analyze ~n (Sim.Trace.records trace) in
      let agrees = Analyzer.agrees verdict analysis.Sim.Analysis.verdict in
      ( Some agrees,
        if agrees then []
        else [ "oracle: trace oracle disagrees with the live checker" ] )
  in
  let result =
    {
      violations =
        verdict.Checker.violations @ List.rev !liveness
        @ oracle_violations;
      generated;
      delivered_remote;
      rounds = !rounds;
      departures =
        List.map
          (fun { Urcgc.Cluster.who; why; _ } ->
            (Net.Node_id.to_int who, Urcgc.Member.reason_to_string why))
          (Urcgc.Cluster.departures cluster);
      oracle_agrees;
      cascade_capped = !cascade_capped;
    }
  in
  if !Sim.Prof.on then Sim.Prof.exit ();
  result

(* -- the driver -------------------------------------------------------- *)

type counterexample = { cx_schedule : int list; cx_violations : string list }

type report = {
  config : config;
  prune : bool;
  max_schedules : int;
  stats : Sim.Explore.stats;
  schedules_with_violations : int;
  distinct_violations : string list;
  counterexample : counterexample option;
  oracle_checked : int;
  oracle_disagreements : int;
}

let ok r =
  r.schedules_with_violations = 0 && not r.stats.Sim.Explore.truncated

module Strings = Set.Make (String)

let explore ?(prune = true) ?(max_schedules = 200_000) c =
  validate c;
  let with_violations = ref 0 in
  let distinct = ref Strings.empty in
  let counterexample = ref None in
  let oracle_checked = ref 0 in
  let oracle_disagreements = ref 0 in
  let stats =
    Sim.Prof.span "explore" @@ fun () ->
    let stats =
      Sim.Explore.explore ~prune ~max_schedules (run_schedule c)
      ~on_schedule:(fun ~schedule result ->
        if result.violations <> [] then begin
          incr with_violations;
          List.iter
            (fun v -> distinct := Strings.add v !distinct)
            result.violations;
          if !counterexample = None then
            counterexample :=
              Some
                { cx_schedule = schedule; cx_violations = result.violations }
        end;
        match result.oracle_agrees with
        | Some agrees ->
            incr oracle_checked;
            if not agrees then incr oracle_disagreements
        | None -> ())
    in
    (* Deterministic attribution: how much of the choice tree the DPOR
       pruning rule cut, next to the time the survivors cost. *)
    Sim.Prof.count ~by:stats.Sim.Explore.explored "schedules_explored";
    Sim.Prof.count ~by:stats.Sim.Explore.pruned "pruned_branches";
    stats
  in
  {
    config = c;
    prune;
    max_schedules;
    stats;
    schedules_with_violations = !with_violations;
    distinct_violations = Strings.elements !distinct;
    counterexample = !counterexample;
    oracle_checked = !oracle_checked;
    oracle_disagreements = !oracle_disagreements;
  }

let replay c ~schedule = Sim.Explore.replay (run_schedule c) ~schedule

let repro_command c ~schedule =
  let b = Buffer.create 128 in
  Buffer.add_string b "urcgc_sim explore";
  Printf.bprintf b " -n %d -K %d --messages %d --window %d --horizon %d" c.n
    c.k c.messages c.window_subruns c.horizon_subruns;
  if c.crash_choices then Buffer.add_string b " --crash-choices";
  List.iter
    (fun (node, round) -> Printf.bprintf b " --fixed-crash %d@%d" node round)
    c.fixed_crashes;
  if c.omission_choices > 0 then
    Printf.bprintf b " --omission-choices %d" c.omission_choices;
  if c.silenced > 0 then begin
    Printf.bprintf b " --silenced %d" c.silenced;
    match c.silence_mode with
    | Window -> Buffer.add_string b " --silence-mode window"
    | Persistent -> ()
  end;
  if not c.with_oracle then Buffer.add_string b " --no-oracle";
  Printf.bprintf b " --replay-schedule %s"
    (if schedule = [] then "-"
     else String.concat "," (List.map string_of_int schedule));
  Buffer.contents b

let of_campaign_spec ?(window_subruns = 2) (spec : Campaign.spec) =
  if
    spec.Campaign.send_omission > 0.
    || spec.Campaign.recv_omission > 0.
    || spec.Campaign.link_loss > 0.
  then None
  else
    let horizon =
      max
        (window_subruns + (2 * spec.Campaign.k) + 4)
        (1
        + List.fold_left
            (fun acc (_, subrun) -> max acc (subrun + 1))
            0 spec.Campaign.crashes)
    in
    Some
      {
        n = spec.Campaign.n;
        k = spec.Campaign.k;
        messages = min spec.Campaign.messages (spec.Campaign.n * window_subruns);
        window_subruns;
        horizon_subruns = horizon;
        crash_choices = false;
        (* A campaign crash at subrun s lands at tick s * per_rtd + 1, i.e.
           just after round 2s fired: round 2s + 1 in explorer terms. *)
        fixed_crashes =
          List.map
            (fun (node, subrun) -> (node, (2 * subrun) + 1))
            spec.Campaign.crashes;
        omission_choices = 0;
        silenced = spec.Campaign.silenced_per_subrun;
        (* Campaign bursts keep applying for the whole run; shrunk
           reproducers are short sustained bursts, so only the persistent
           adversary rediscovers them. *)
        silence_mode = Persistent;
        max_deliveries_per_round = 256;
        with_oracle = false;
      }

(* -- deterministic JSON ------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | ch when Char.code ch < 0x20 ->
          Printf.bprintf b "\\u%04x" (Char.code ch)
      | ch -> Buffer.add_char b ch)
    s;
  Buffer.contents b

let bool_str v = if v then "true" else "false"

let to_json r =
  let c = r.config in
  let b = Buffer.create 1024 in
  Printf.bprintf b
    "{\"explore\":{\"n\":%d,\"k\":%d,\"messages\":%d,\"window_subruns\":%d,\
     \"horizon_subruns\":%d,\"crash_choices\":%s,\"fixed_crashes\":[%s],\
     \"omission_choices\":%d,\"silenced\":%d"
    c.n c.k c.messages c.window_subruns c.horizon_subruns
    (bool_str c.crash_choices)
    (String.concat ","
       (List.map
          (fun (node, round) -> Printf.sprintf "[%d,%d]" node round)
          c.fixed_crashes))
    c.omission_choices c.silenced;
  (* Emitted only when silencing is on, so silenced-free pinned reports
     keep their exact bytes from before the knob existed. *)
  if c.silenced > 0 then
    Printf.bprintf b ",\"silence_mode\":\"%s\""
      (match c.silence_mode with
      | Window -> "window"
      | Persistent -> "persistent");
  Printf.bprintf b
    ",\"max_deliveries_per_round\":%d,\"with_oracle\":%s,\"prune\":%s,\
     \"max_schedules\":%d}"
    c.max_deliveries_per_round (bool_str c.with_oracle) (bool_str r.prune)
    r.max_schedules;
  let s = r.stats in
  Printf.bprintf b
    ",\"space\":{\"total\":%d,\"explored\":%d,\"pruned\":%d,\"max_depth\":%d,\
     \"truncated\":%s}"
    s.Sim.Explore.total s.Sim.Explore.explored s.Sim.Explore.pruned
    s.Sim.Explore.max_depth
    (bool_str s.Sim.Explore.truncated);
  Printf.bprintf b
    ",\"verdict\":{\"ok\":%s,\"schedules_with_violations\":%d,\
     \"distinct_violations\":[%s]}"
    (bool_str (ok r))
    r.schedules_with_violations
    (String.concat ","
       (List.map
          (fun v -> Printf.sprintf "\"%s\"" (json_escape v))
          r.distinct_violations));
  Printf.bprintf b ",\"oracle\":{\"checked\":%d,\"disagreements\":%d}"
    r.oracle_checked r.oracle_disagreements;
  (match r.counterexample with
  | None -> ()
  | Some cx ->
      Printf.bprintf b
        ",\"counterexample\":{\"schedule\":[%s],\"violations\":[%s],\
         \"repro\":\"%s\"}"
        (String.concat "," (List.map string_of_int cx.cx_schedule))
        (String.concat ","
           (List.map
              (fun v -> Printf.sprintf "\"%s\"" (json_escape v))
              cx.cx_violations))
        (json_escape (repro_command c ~schedule:cx.cx_schedule)));
  Buffer.add_char b '}';
  Buffer.contents b

let pp_report ppf r =
  let s = r.stats in
  Format.fprintf ppf
    "@[<v>explore n=%d k=%d messages=%d window=%d horizon=%d@,\
     schedules: %d explored, %d pruned branches, %d total%s (max depth %d)@,\
     verdict: %s@]"
    r.config.n r.config.k r.config.messages r.config.window_subruns
    r.config.horizon_subruns s.Sim.Explore.explored s.Sim.Explore.pruned
    s.Sim.Explore.total
    (if s.Sim.Explore.truncated then " [truncated]" else "")
    s.Sim.Explore.max_depth
    (if ok r then "every explored schedule satisfies all clauses"
     else
       Printf.sprintf "%d schedules with violations: %s"
         r.schedules_with_violations
         (String.concat "; " r.distinct_violations));
  match r.counterexample with
  | None -> ()
  | Some cx ->
      Format.fprintf ppf "@,counterexample: %s"
        (repro_command r.config ~schedule:cx.cx_schedule)
