type verdict = {
  causal_ok : bool;
  atomicity_ok : bool;
  zombie_ok : bool;
  views_ok : bool;
  partition_ok : bool;
  violations : string list;
}

let ok v =
  v.causal_ok && v.atomicity_ok && v.zombie_ok && v.views_ok && v.partition_ok

let check_causal_order cluster violations =
  let config = Urcgc.Cluster.config cluster in
  let n = config.Urcgc.Config.n in
  let trackers = Hashtbl.create n in
  let tracker node =
    match Hashtbl.find_opt trackers node with
    | Some t -> t
    | None ->
        let t = Causal.Delivery.create ~n in
        Hashtbl.replace trackers node t;
        t
  in
  let causal_ok = ref true in
  List.iter
    (fun { Urcgc.Cluster.node; msg; at } ->
      let t = tracker node in
      if Causal.Delivery.processable t msg then
        Causal.Delivery.mark t msg.Causal.Causal_msg.mid
      else begin
        causal_ok := false;
        violations :=
          Format.asprintf
            "%a processed %a at %a before its causal predecessors (missing %a)"
            Net.Node_id.pp node Causal.Mid.pp msg.Causal.Causal_msg.mid
            Sim.Ticks.pp at
            (Format.pp_print_list
               ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
               Causal.Mid.pp)
            (Causal.Delivery.missing t msg)
          :: !violations;
        (* Keep replaying from the observed state to catch further issues. *)
        Causal.Delivery.force_skip_to t
          ~origin:(Causal.Mid.origin msg.Causal.Causal_msg.mid)
          ~seq:(Causal.Mid.seq msg.Causal.Causal_msg.mid)
      end)
    (Urcgc.Cluster.deliveries cluster);
  !causal_ok

let check_atomicity cluster violations =
  let actives = Urcgc.Cluster.active_members cluster in
  let processed_by = Hashtbl.create 16 in
  List.iter
    (fun node -> Hashtbl.replace processed_by node Causal.Mid.Set.empty)
    actives;
  List.iter
    (fun { Urcgc.Cluster.node; msg; _ } ->
      match Hashtbl.find_opt processed_by node with
      | None -> ()
      | Some set ->
          Hashtbl.replace processed_by node
            (Causal.Mid.Set.add msg.Causal.Causal_msg.mid set))
    (Urcgc.Cluster.deliveries cluster);
  match actives with
  | [] -> true
  | first :: rest ->
      let reference = Hashtbl.find processed_by first in
      let atomicity_ok = ref true in
      List.iter
        (fun node ->
          let set = Hashtbl.find processed_by node in
          if not (Causal.Mid.Set.equal set reference) then begin
            atomicity_ok := false;
            let only_ref = Causal.Mid.Set.diff reference set in
            let only_node = Causal.Mid.Set.diff set reference in
            violations :=
              Format.asprintf
                "atomicity: %a and %a disagree (%d messages only at %a, %d \
                 only at %a)"
                Net.Node_id.pp first Net.Node_id.pp node
                (Causal.Mid.Set.cardinal only_ref)
                Net.Node_id.pp first
                (Causal.Mid.Set.cardinal only_node)
                Net.Node_id.pp node
              :: !violations
          end)
        rest;
      !atomicity_ok

let check_no_zombie cluster violations =
  let actives = Net.Node_id.Set.of_list (Urcgc.Cluster.active_members cluster) in
  (* Only survivors' discards witness group agreement.  A member that later
     departed may have purged orphans under a decision nobody else holds —
     the solo "full-group" decision of a partitioned node is the canonical
     case — and charging its discards against the survivors would flag
     perfectly uniform runs. *)
  let discarded =
    List.fold_left
      (fun acc (node, mids, _) ->
        if Net.Node_id.Set.mem node actives then
          List.fold_left (fun acc mid -> Causal.Mid.Set.add mid acc) acc mids
        else acc)
      Causal.Mid.Set.empty
      (Urcgc.Cluster.discards cluster)
  in
  (* First departure tick per node: a member that left must never process
     anything at a strictly later tick (same-tick events belong to the
     action batch that contained the departure). *)
  let left_at = Hashtbl.create 8 in
  List.iter
    (fun { Urcgc.Cluster.who; when_; _ } ->
      if not (Hashtbl.mem left_at who) then Hashtbl.replace left_at who when_)
    (Urcgc.Cluster.departures cluster);
  let ok = ref true in
  List.iter
    (fun { Urcgc.Cluster.node; msg; at } ->
      if
        Net.Node_id.Set.mem node actives
        && Causal.Mid.Set.mem msg.Causal.Causal_msg.mid discarded
      then begin
        ok := false;
        violations :=
          Format.asprintf "%a processed discarded message %a" Net.Node_id.pp
            node Causal.Mid.pp msg.Causal.Causal_msg.mid
          :: !violations
      end;
      match Hashtbl.find_opt left_at node with
      | Some left when Sim.Ticks.compare at left > 0 ->
          ok := false;
          violations :=
            Format.asprintf "zombie: %a processed %a at %a after leaving at %a"
              Net.Node_id.pp node Causal.Mid.pp msg.Causal.Causal_msg.mid
              Sim.Ticks.pp at Sim.Ticks.pp left
            :: !violations
      | _ -> ())
    (Urcgc.Cluster.deliveries cluster);
  !ok

(* A [Partitioned] departure means a member's adopted view degenerated to
   itself alone: the group lost its primary partition.  Within the fault
   budget (silenced + crashed <= t) this can never happen — at least
   n - t >= t + 1 members keep agreeing on a common view — so any such
   departure is the detectable liveness cost of beyond-budget fault load. *)
let check_partition cluster violations =
  let ok = ref true in
  List.iter
    (fun { Urcgc.Cluster.who; why; when_ } ->
      if why = Urcgc.Member.Partitioned then begin
        ok := false;
        violations :=
          Format.asprintf
            "liveness: %a departed at %a with a solo view — the group lost \
             its primary partition"
            Net.Node_id.pp who Sim.Ticks.pp when_
          :: !violations
      end)
    (Urcgc.Cluster.departures cluster);
  !ok

(* At quiescence every surviving member must hold the same group view
   (assumption 4 of Section 4: "the algorithm guarantees that all the
   active processes in G achieve the same knowledge about the group"). *)
let check_views cluster violations =
  let actives = Urcgc.Cluster.active_members cluster in
  let views =
    List.map
      (fun node ->
        (node, Urcgc.Member.view (Urcgc.Cluster.member cluster node)))
      actives
  in
  match views with
  | [] -> true
  | (first_node, first) :: rest ->
      let ok = ref true in
      List.iter
        (fun (node, view) ->
          if not (Causal.Group_view.equal view first) then begin
            ok := false;
            violations :=
              Format.asprintf "group views diverge: %a holds %a but %a holds %a"
                Net.Node_id.pp first_node Causal.Group_view.pp first
                Net.Node_id.pp node Causal.Group_view.pp view
              :: !violations
          end)
        rest;
      !ok

let check cluster =
  let violations = ref [] in
  let causal_ok = check_causal_order cluster violations in
  let atomicity_ok = check_atomicity cluster violations in
  let zombie_ok = check_no_zombie cluster violations in
  let views_ok = check_views cluster violations in
  let partition_ok = check_partition cluster violations in
  {
    causal_ok;
    atomicity_ok;
    zombie_ok;
    views_ok;
    partition_ok;
    violations = List.rev !violations;
  }

let pp ppf v =
  if ok v then Format.pp_print_string ppf "all invariants hold"
  else
    Format.fprintf ppf "@[<v 2>violations:@ %a@]"
      (Format.pp_print_list Format.pp_print_string)
      v.violations
