type spec = {
  n : int;
  k : int;
  rate : float;
  messages : int;
  send_omission : float;
  recv_omission : float;
  link_loss : float;
  silenced_per_subrun : int;
  crashes : (int * int) list;
  max_rtd : float;
}

let float_str = Printf.sprintf "%.12g"

let pp_spec ppf spec =
  Format.fprintf ppf
    "@[<h>n=%d k=%d rate=%s messages=%d send=%s recv=%s link=%s silenced=%d \
     crashes=[%a] max_rtd=%s@]"
    spec.n spec.k (float_str spec.rate) spec.messages
    (float_str spec.send_omission)
    (float_str spec.recv_omission)
    (float_str spec.link_loss)
    spec.silenced_per_subrun
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";")
       (fun ppf (node, subrun) -> Format.fprintf ppf "%d@@%d" node subrun))
    spec.crashes
    (float_str spec.max_rtd)

let resilience spec = (spec.n - 1) / 2

(* CLI-facing validation: everything a spec can get wrong, diagnosed in one
   place.  Without this, out-of-range values slipped through silently —
   e.g. a negative --silenced was simply never applied by [fault_of_spec]. *)
let validate_spec spec =
  let fail fmt = Printf.ksprintf invalid_arg fmt in
  let prob name p =
    if not (p >= 0.0 && p <= 1.0) then
      fail "campaign spec: %s %s is outside [0,1]" name (float_str p)
  in
  if spec.n < 2 then fail "campaign spec: n %d is too small (need >= 2)" spec.n;
  if spec.k < 1 then fail "campaign spec: K %d must be >= 1" spec.k;
  prob "rate" spec.rate;
  if spec.messages < 0 then
    fail "campaign spec: negative message cap %d" spec.messages;
  prob "send-omission" spec.send_omission;
  prob "recv-omission" spec.recv_omission;
  prob "link-loss" spec.link_loss;
  if spec.silenced_per_subrun < 0 || spec.silenced_per_subrun >= spec.n then
    fail "campaign spec: silenced %d is outside [0,%d)" spec.silenced_per_subrun
      spec.n;
  List.iter
    (fun (node, subrun) ->
      if node < 0 || node >= spec.n then
        fail "campaign spec: crash node %d is outside [0,%d)" node spec.n;
      if subrun < 0 then fail "campaign spec: negative crash subrun %d" subrun)
    spec.crashes;
  if not (spec.max_rtd > 0.0) then
    fail "campaign spec: max-rtd %s must be positive" (float_str spec.max_rtd)

let within_budget spec =
  spec.silenced_per_subrun + List.length spec.crashes <= resilience spec

let fault_of_spec spec =
  let base =
    {
      Net.Fault.reliable with
      Net.Fault.send_omission = spec.send_omission;
      recv_omission = spec.recv_omission;
      link_loss = spec.link_loss;
    }
  in
  let base =
    if spec.silenced_per_subrun > 0 then
      Net.Fault.with_subrun_silence ~count:spec.silenced_per_subrun
        ~population:spec.n base
    else base
  in
  Net.Fault.with_crashes
    (List.map
       (fun (node, subrun) ->
         ( Net.Node_id.of_int node,
           Sim.Ticks.of_int ((subrun * Sim.Ticks.per_rtd) + 1) ))
       spec.crashes)
    base

let scenario_of_spec ?(name = "campaign") ~seed spec =
  validate_spec spec;
  let config = Urcgc.Config.make ~k:spec.k ~n:spec.n () in
  let load = Load.make ~rate:spec.rate ~total_messages:spec.messages () in
  Scenario.make ~name ~fault:(fault_of_spec spec) ~seed ~max_rtd:spec.max_rtd
    ~config ~load ()

type outcome = { ok : bool; violations : string list }

let evaluate spec (report : Runner.report) =
  let survivors_exist = spec.n - List.length spec.crashes >= 2 in
  let liveness = ref [] in
  let fail msg = liveness := msg :: !liveness in
  if spec.messages > 0 && spec.rate > 0.0 && report.Runner.generated = 0 then
    fail "progress: no messages generated before the time cap";
  if
    report.Runner.generated > 0 && survivors_exist
    && report.Runner.delivered_remote = 0
  then fail "liveness: nothing was processed at any remote process";
  (* A within-budget run with no fail-stop schedule must drain completely:
     no departure is legitimate, so every generated message reaches all
     n - 1 remote processes before the cap.  Runs that expelled somebody
     (false declarations are possible inside the budget once bursts are a
     sizable fraction of n) are judged on safety only. *)
  if
    within_budget spec && spec.crashes = []
    && report.Runner.departures = []
    && report.Runner.generated > 0
  then begin
    let expected = report.Runner.generated * (spec.n - 1) in
    if report.Runner.delivered_remote <> expected then
      fail
        (Printf.sprintf
           "liveness: incomplete delivery (%d of %d remote processing events)"
           report.Runner.delivered_remote expected)
  end;
  let liveness = List.rev !liveness in
  let verdict = report.Runner.verdict in
  {
    ok = Checker.ok verdict && liveness = [];
    violations = verdict.Checker.violations @ liveness;
  }

let execute ?metrics ?tracer ~seed spec =
  let report = Runner.run ?tracer ?metrics (scenario_of_spec ~seed spec) in
  (evaluate spec report, report)

(* ---- Random configuration generation ---------------------------------- *)

(* The draw order below is part of the determinism contract: a campaign seed
   fully determines the sweep. *)
let generate ?(over_budget = false) rng =
  let n = if over_budget then 5 + Sim.Rng.int rng 11 else 4 + Sim.Rng.int rng 12 in
  let t = (n - 1) / 2 in
  let silenced, k, burst =
    if over_budget then
      (* Strictly beyond the resilience bound, up to silencing all but two
         processes: decisions can fail to circulate. *)
      ( t + 1 + Sim.Rng.int rng (max 1 (n - 1 - (t + 1))),
        2 + Sim.Rng.int rng 3,
        true )
    else if n >= 12 && Sim.Rng.bool rng 0.4 then
      (* Membership accuracy is guarded by K, not by t: a healthy process
         silenced K subruns in a row is falsely declared crashed, with
         probability ~(s/n)^K per window.  Within-budget draws therefore
         keep that expectation negligible (s = 1, K = 4, n >= 12, short
         runs); the --over-budget sweep is where the envelope is probed. *)
      (1, 4, true)
    else (0, 2 + Sim.Rng.int rng 3, false)
  in
  let rate = 0.2 +. Sim.Rng.float rng 0.6 in
  let messages =
    if burst then 30 + Sim.Rng.int rng 30 else 30 + Sim.Rng.int rng 90
  in
  let send_omission, recv_omission =
    if Sim.Rng.bool rng 0.5 then
      let every = 100 + Sim.Rng.int rng 900 in
      let p = 1.0 /. float_of_int every /. 2.0 in
      (p, p)
    else (0.0, 0.0)
  in
  let link_loss = if Sim.Rng.bool rng 0.3 then Sim.Rng.float rng 0.004 else 0.0 in
  let crashes =
    let budget_left = t - silenced in
    if over_budget || budget_left <= 0 || not (Sim.Rng.bool rng 0.4) then []
    else begin
      let count = 1 + Sim.Rng.int rng (min budget_left 2) in
      let ids = Array.init n Fun.id in
      Sim.Rng.shuffle rng ids;
      List.init count (fun i -> (ids.(i), 1 + Sim.Rng.int rng 8))
    end
  in
  let max_rtd = if over_budget then 120.0 else 300.0 in
  {
    n;
    k;
    rate;
    messages;
    send_omission;
    recv_omission;
    link_loss;
    silenced_per_subrun = silenced;
    crashes;
    max_rtd;
  }

(* ---- Shrinking -------------------------------------------------------- *)

type shrunk = {
  shrunk_spec : spec;
  shrunk_violations : string list;
  shrink_steps : int;
}

(* Liveness/progress violations come from {!evaluate} with these prefixes;
   everything else originates in the safety checker. *)
let is_liveness v =
  String.length v >= 9
  &&
  let prefix = String.sub v 0 9 in
  prefix = "liveness:" || prefix = "progress:"

(* Candidate reductions, biggest first.  Reducing n also re-clamps the burst
   size below the new population and drops crashes of removed processes. *)
let candidates spec =
  let with_n n' =
    {
      spec with
      n = n';
      silenced_per_subrun = min spec.silenced_per_subrun (n' - 1);
      crashes = List.filter (fun (node, _) -> node < n') spec.crashes;
    }
  in
  List.concat
    [
      (if spec.messages >= 20 then [ { spec with messages = spec.messages / 2 } ]
       else []);
      (if spec.n >= 6 then [ with_n (spec.n - 2) ] else []);
      List.mapi
        (fun i _ ->
          { spec with crashes = List.filteri (fun j _ -> j <> i) spec.crashes })
        spec.crashes;
      (if spec.send_omission > 0.0 || spec.recv_omission > 0.0 then
         { spec with send_omission = 0.0; recv_omission = 0.0 }
         ::
         (* Zeroing removes the per-packet RNG draws entirely and so shifts
            every later draw; when that perturbation makes the failure
            vanish, halving (which keeps the draw pattern) still shrinks the
            probability — but only down to a floor, past which further
            halvings are meaningless step burn. *)
         (if Float.max spec.send_omission spec.recv_omission > 1e-9 then
            [
              {
                spec with
                send_omission = spec.send_omission /. 2.0;
                recv_omission = spec.recv_omission /. 2.0;
              };
            ]
          else [])
       else []);
      (if spec.link_loss > 0.0 then [ { spec with link_loss = 0.0 } ] else []);
      (if spec.silenced_per_subrun > 0 then
         [ { spec with silenced_per_subrun = spec.silenced_per_subrun - 1 } ]
       else []);
      (if spec.max_rtd > 60.0 then [ { spec with max_rtd = spec.max_rtd /. 2.0 } ]
       else []);
      (if spec.rate > 0.35 then [ { spec with rate = 0.3 } ] else []);
    ]

let shrink ?(max_steps = 150) ?(jobs = 1) ~seed spec outcome =
  let steps = ref 0 in
  (* A reduction is kept only if the run still fails in the same class: a
     safety (checker) failure must not degenerate into a mere liveness
     failure — e.g. halving max_rtd would otherwise turn any healthy run
     into an "incomplete delivery" reproducer of nothing. *)
  let required_safety =
    List.exists (fun v -> not (is_liveness v)) outcome.violations
  in
  (* Shrinking must also preserve the budget class: an over-budget failure
     (silenced + crashes > t) walking below the resilience bound would
     change the claim entirely — "the protocol fails beyond its envelope"
     is not shrinkable into "the protocol fails within it", and vice
     versa.  The class check lives inside [still_fails] so the sequential
     and speculative-parallel paths reject identically. *)
  let original_within = within_budget spec in
  let still_fails candidate =
    if within_budget candidate <> original_within then None
    else
      let outcome, report = execute ~seed candidate in
      let safety_failed = not (Checker.ok report.Runner.verdict) in
      if outcome.ok || (required_safety && not safety_failed) then None
      else Some outcome
  in
  (* Greedy descent to a fixpoint: take the first candidate that still
     fails, restart from it; stop when no reduction preserves the failure
     (or the step budget runs out).

     The parallel path evaluates the whole round's candidate list
     speculatively, then applies the {e sequential} acceptance rule: the
     first-accepting candidate in candidate order wins, and the recorded
     step count is what the sequential scan would have consumed (the
     accepted index + 1, or the full round on a fixpoint).  Candidates a
     sequential shrinker would never have reached — those past the first
     acceptance, or past the step budget — are wasted work, never extra
     recorded steps, so the shrunk spec, violations, and step count are
     identical at any job count. *)
  let rec descend spec violations =
    if !steps >= max_steps then (spec, violations)
    else begin
      let cands = Array.of_list (candidates spec) in
      let round = min (Array.length cands) (max_steps - !steps) in
      if round = 0 then (spec, violations)
      else if jobs <= 1 then begin
        (* Sequential fast path: stop evaluating at the first acceptance. *)
        let rec first i =
          if i >= round then begin
            steps := !steps + round;
            (spec, violations)
          end
          else
            match still_fails cands.(i) with
            | Some outcome ->
                steps := !steps + i + 1;
                descend cands.(i) outcome.violations
            | None -> first (i + 1)
        in
        first 0
      end
      else begin
        let results = Sim.Pool.map ~jobs (fun i -> still_fails cands.(i)) round in
        let rec first i =
          if i >= round then None
          else
            match results.(i) with
            | Some outcome -> Some (i, outcome)
            | None -> first (i + 1)
        in
        match first 0 with
        | Some (i, outcome) ->
            steps := !steps + i + 1;
            descend cands.(i) outcome.violations
        | None ->
            steps := !steps + round;
            (spec, violations)
      end
    end
  in
  let shrunk_spec, shrunk_violations = descend spec outcome.violations in
  { shrunk_spec; shrunk_violations; shrink_steps = !steps }

(* ---- Campaign driver -------------------------------------------------- *)

type run = {
  index : int;
  seed : int;
  spec : spec;
  outcome : outcome;
  generated : int;
  delivered_remote : int;
  subruns : int;
  mean_delay_rtd : float;
  shrunk : shrunk option;
  metrics : string option;
  analysis : string option;
  oracle_agrees : bool option;
}

type t = {
  campaign_seed : int;
  budget : int;
  over_budget : bool;
  runs : run list;
  failed : int;
}

let repro_command ~seed spec =
  let buf = Buffer.create 128 in
  Printf.bprintf buf
    "urcgc_sim replay -n %d -K %d --rate %s --messages %d --silenced %d \
     --max-rtd %s --seed %d"
    spec.n spec.k (float_str spec.rate) spec.messages spec.silenced_per_subrun
    (float_str spec.max_rtd) seed;
  if spec.send_omission > 0.0 then
    Printf.bprintf buf " --send-omission %s" (float_str spec.send_omission);
  if spec.recv_omission > 0.0 then
    Printf.bprintf buf " --recv-omission %s" (float_str spec.recv_omission);
  if spec.link_loss > 0.0 then
    Printf.bprintf buf " --link-loss %s" (float_str spec.link_loss);
  List.iter
    (fun (node, subrun) -> Printf.bprintf buf " --crash %d@%d" node subrun)
    spec.crashes;
  Buffer.contents buf

let run ?(over_budget = false) ?(shrink_failures = true) ?(with_metrics = false)
    ?(with_analysis = false) ?(jobs = 1) ~budget ~seed () =
  if budget < 0 then invalid_arg "Campaign.run: negative budget";
  if jobs < 0 then invalid_arg "Campaign.run: negative job count";
  (* The span profiler is one global tree: worker domains would race on it.
     Profiled campaigns therefore run sequentially — the cost attribution
     is per-phase, not per-core, so nothing is lost but wall-clock. *)
  let jobs = if Sim.Prof.enabled () then 1 else jobs in
  (* Phase 1 — sequential spec generation.  The single [generate] stream is
     part of the determinism contract: spec [i] must be the [i]-th draw from
     the campaign seed's splitmix64 stream no matter how many workers later
     execute the runs, so this pass never moves into the parallel region. *)
  let rng = Sim.Rng.create ~seed in
  let specs =
    Sim.Prof.span "campaign.gen" @@ fun () ->
    if budget = 0 then [||]
    else begin
      let first = generate ~over_budget rng in
      let specs = Array.make budget first in
      for index = 1 to budget - 1 do
        specs.(index) <- generate ~over_budget rng
      done;
      specs
    end
  in
  (* Phase 2 — parallel execution.  Each run is a pure function of its
     derived seed and owns every piece of mutable state it touches (engine,
     RNG, fault process, tracer, metrics registry — all created inside the
     worker), so results merged back in index order are byte-identical to a
     sequential sweep at any job count. *)
  let executed =
    Sim.Prof.span "campaign.run" @@ fun () ->
    Sim.Pool.map ~jobs
      (fun index ->
        if !Sim.Prof.on then Sim.Prof.enter "run";
        let spec = specs.(index) in
        let run_seed = Sim.Rng.derive ~seed index in
        (* A fresh registry per run, read out before the record is built —
           shrinking runs reuse [execute] without it, so the recorded
           metrics describe exactly this run. *)
        let metrics =
          if with_metrics then Sim.Metrics.create () else Sim.Metrics.null
        in
        let tracer = if with_analysis then Some (Sim.Trace.unbounded ()) else None in
        let outcome, report = execute ~metrics ?tracer ~seed:run_seed spec in
        let analysis =
          Option.map
            (fun t -> Sim.Analysis.analyze ~n:spec.n (Sim.Trace.records t))
            tracer
        in
        let result = {
          index;
          seed = run_seed;
          spec;
          outcome;
          generated = report.Runner.generated;
          delivered_remote = report.Runner.delivered_remote;
          subruns = report.Runner.subruns;
          mean_delay_rtd = Runner.mean_delay_rtd report;
          shrunk = None;
          metrics =
            (if with_metrics then Some (Sim.Metrics.to_json metrics) else None);
          analysis = Option.map Sim.Analysis.report_json analysis;
          oracle_agrees =
            Option.map
              (fun a ->
                Analyzer.agrees report.Runner.verdict a.Sim.Analysis.verdict)
              analysis;
        } in
        if !Sim.Prof.on then Sim.Prof.exit ();
        result)
      budget
  in
  (* Phase 3 — shrink failures in index order.  Kept outside the parallel
     region so worker domains never nest; the parallelism inside a shrink
     is the speculative per-round candidate evaluation in {!shrink}. *)
  let runs =
    Sim.Prof.span "campaign.shrink" @@ fun () ->
    Array.to_list executed
    |> List.map (fun r ->
           if r.outcome.ok || not shrink_failures then r
           else { r with shrunk = Some (shrink ~jobs ~seed:r.seed r.spec r.outcome) })
  in
  let failed = List.length (List.filter (fun r -> not r.outcome.ok) runs) in
  { campaign_seed = seed; budget; over_budget; runs; failed }

(* ---- JSON report ------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let buf_string_list buf strings =
  Buffer.add_char buf '[';
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf "\"%s\"" (json_escape s))
    strings;
  Buffer.add_char buf ']'

let buf_spec buf spec =
  Printf.bprintf buf
    "{\"n\":%d,\"k\":%d,\"rate\":%s,\"messages\":%d,\"send_omission\":%s,\"recv_omission\":%s,\"link_loss\":%s,\"silenced_per_subrun\":%d,\"crashes\":["
    spec.n spec.k (float_str spec.rate) spec.messages
    (float_str spec.send_omission)
    (float_str spec.recv_omission)
    (float_str spec.link_loss)
    spec.silenced_per_subrun;
  List.iteri
    (fun i (node, subrun) ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf "[%d,%d]" node subrun)
    spec.crashes;
  Printf.bprintf buf "],\"max_rtd\":%s}" (float_str spec.max_rtd)

let buf_run buf r =
  Printf.bprintf buf "{\"index\":%d,\"seed\":%d,\"spec\":" r.index r.seed;
  buf_spec buf r.spec;
  Printf.bprintf buf ",\"fault\":%s"
    (Net.Fault.json_of_spec (fault_of_spec r.spec));
  Printf.bprintf buf
    ",\"generated\":%d,\"delivered_remote\":%d,\"subruns\":%d,\"mean_delay_rtd\":%s,\"verdict\":\"%s\""
    r.generated r.delivered_remote r.subruns
    (float_str r.mean_delay_rtd)
    (if r.outcome.ok then "ok" else "fail");
  if not r.outcome.ok then begin
    Buffer.add_string buf ",\"violations\":";
    buf_string_list buf r.outcome.violations;
    Printf.bprintf buf ",\"repro\":\"%s\""
      (json_escape (repro_command ~seed:r.seed r.spec))
  end;
  (match r.shrunk with
  | None -> ()
  | Some s ->
      Buffer.add_string buf ",\"shrunk\":{\"spec\":";
      buf_spec buf s.shrunk_spec;
      Buffer.add_string buf ",\"violations\":";
      buf_string_list buf s.shrunk_violations;
      Printf.bprintf buf ",\"steps\":%d,\"repro\":\"%s\"}" s.shrink_steps
        (json_escape (repro_command ~seed:r.seed s.shrunk_spec)));
  (match r.metrics with
  | None -> ()
  | Some json -> Printf.bprintf buf ",\"metrics\":%s" json);
  (match r.oracle_agrees with
  | None -> ()
  | Some agrees -> Printf.bprintf buf ",\"oracle_agrees\":%b" agrees);
  (match r.analysis with
  | None -> ()
  | Some json -> Printf.bprintf buf ",\"analysis\":%s" json);
  Buffer.add_char buf '}'

let to_json t =
  let buf = Buffer.create 4096 in
  Printf.bprintf buf
    "{\"campaign\":{\"seed\":%d,\"budget\":%d,\"over_budget\":%b},\"runs\":["
    t.campaign_seed t.budget t.over_budget;
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char buf ',';
      buf_run buf r)
    t.runs;
  Printf.bprintf buf "],\"summary\":{\"runs\":%d,\"ok\":%d,\"failed\":%d}}"
    t.budget (t.budget - t.failed) t.failed;
  Buffer.contents buf

(* ---- Human summary ---------------------------------------------------- *)

let summary_table t =
  let table =
    Stats.Table.create
      ~columns:
        [
          ("outcome", Stats.Table.Left);
          ("runs", Stats.Table.Right);
          ("share", Stats.Table.Right);
        ]
  in
  let share count =
    if t.budget = 0 then Stats.Table.cell_pct 0.0
    else Stats.Table.cell_pct (float_of_int count /. float_of_int t.budget)
  in
  Stats.Table.add_row table
    [ "ok"; Stats.Table.cell_int (t.budget - t.failed); share (t.budget - t.failed) ];
  Stats.Table.add_row table
    [ "failed"; Stats.Table.cell_int t.failed; share t.failed ];
  table

let pp_summary ppf t =
  Format.fprintf ppf "@[<v>campaign seed=%d budget=%d%s: %d ok, %d failed@,%a"
    t.campaign_seed t.budget
    (if t.over_budget then " (bursts forced over the t budget)" else "")
    (t.budget - t.failed) t.failed Stats.Table.pp (summary_table t);
  List.iter
    (fun r ->
      if not r.outcome.ok then begin
        Format.fprintf ppf "@,run %d (seed %d): %a" r.index r.seed pp_spec
          r.spec;
        List.iter
          (fun v -> Format.fprintf ppf "@,  violation: %s" v)
          r.outcome.violations;
        match r.shrunk with
        | None -> ()
        | Some s ->
            Format.fprintf ppf "@,  shrunk (%d runs): %a@,  repro: %s"
              s.shrink_steps pp_spec s.shrunk_spec
              (repro_command ~seed:r.seed s.shrunk_spec)
      end)
    t.runs;
  Format.fprintf ppf "@]"
