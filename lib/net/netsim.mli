(** Datagram subnetwork simulator.

    Delivery is best-effort: packets experience a one-way latency (strictly
    less than half an rtd, so a message sent at a round start is received
    within the same round) and may be dropped by link loss or by the
    send/receive omissions of the faulty endpoints.  A multicast is n
    unicasts, each of which can fail independently — this models the paper's
    assumption that [send] is not indivisible. *)

type 'msg packet = {
  src : Node_id.t;
  dst : Node_id.t;
  kind : Traffic.kind;
  size : int;  (** encoded size in bytes *)
  payload : 'msg;
}

type latency = {
  base : Sim.Ticks.t;  (** minimum one-way latency *)
  jitter : int;        (** extra latency, uniform in [0, jitter) ticks *)
}

val default_latency : latency
(** 40 ticks base + up to 9 ticks jitter: one-way < 1/2 rtd (50 ticks). *)

type 'msg t

val create :
  ?latency:latency -> Sim.Engine.t -> fault:Fault.t -> rng:Sim.Rng.t -> unit -> 'msg t

val engine : 'msg t -> Sim.Engine.t
val fault : 'msg t -> Fault.t
val traffic : 'msg t -> Traffic.t

val attach : 'msg t -> Node_id.t -> ('msg packet -> unit) -> unit
(** Registers the receive handler of a node.  Raises [Invalid_argument] if
    the node already has a handler. *)

val attach_payload : 'msg t -> Node_id.t -> ('msg -> unit) -> unit
(** Like {!attach} for receivers that only read the payload: batched
    delivery then skips materializing a packet record per destination —
    the allocation-free path the protocol stack mounts on. *)

val send :
  'msg t -> src:Node_id.t -> dst:Node_id.t -> kind:Traffic.kind -> size:int ->
  'msg -> unit
(** Queues one datagram.  Accounted in {!traffic} even if later dropped (the
    paper's network load counts offered messages).  Self-sends are delivered
    (with latency) like any other. *)

val multicast :
  'msg t -> src:Node_id.t -> dsts:Node_id.t list -> kind:Traffic.kind ->
  size:int -> 'msg -> unit
(** [n] independent unicasts, accounted as [List.length dsts] packets. *)

val multicast_array :
  'msg t -> src:Node_id.t -> dsts:Node_id.t array -> kind:Traffic.kind ->
  size:int -> 'msg -> unit
(** Same semantics, fault draws and delivery order as {!multicast} — n
    independent unicasts — but scheduled as one batched delivery event per
    distinct jitter value rather than one event, closure and packet per
    destination.  The allocation-conscious entry point for large fan-outs;
    [dsts] is not retained. *)

val delivered_count : 'msg t -> int
(** Packets actually handed to a receive handler (diagnostics). *)

val dropped_count : 'msg t -> int

val set_trace : 'msg t -> Sim.Trace.t -> unit
(** Emit a typed {!Sim.Trace.Drop} event for every packet lost to fault
    injection, labelled with the pipeline stage (send / link / recv /
    filter).  Defaults to {!Sim.Trace.null} (no events). *)

val set_filter : 'msg t -> ('msg packet -> bool) option -> unit
(** Scripted, deterministic fault injection: when set, every packet copy is
    shown to the predicate at send time and dropped when it returns [false]
    (still accounted as offered traffic).  [None] removes the filter.  Used
    by tests to lose one specific message at specific destinations —
    something probabilistic omission rates cannot stage. *)
