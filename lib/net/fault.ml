type spec = {
  crashes : (Node_id.t * Sim.Ticks.t) list;
  send_omission : float;
  recv_omission : float;
  link_loss : float;
  silenced_per_subrun : int;
  population : int;
}

let reliable =
  {
    crashes = [];
    send_omission = 0.0;
    recv_omission = 0.0;
    link_loss = 0.0;
    silenced_per_subrun = 0;
    population = 0;
  }

let omission_every k =
  if k <= 0 then invalid_arg "Fault.omission_every: k must be positive";
  let p = 1.0 /. float_of_int k /. 2.0 in
  { reliable with send_omission = p; recv_omission = p }

let with_crashes crashes spec = { spec with crashes }

let with_subrun_silence ~count ~population spec =
  if count < 0 || count >= population then
    invalid_arg "Fault.with_subrun_silence: count must be in [0, population)";
  { spec with silenced_per_subrun = count; population }

(* %.12g keeps the full double precision of the probabilities while printing
   0.0 as "0": the output is a pure function of the spec, which the campaign
   determinism guarantee relies on. *)
let float_str = Printf.sprintf "%.12g"

let pp_spec ppf spec =
  Format.fprintf ppf
    "@[<h>crashes=[%a] send=%s recv=%s link=%s silenced=%d/%d@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";")
       (fun ppf (node, time) ->
         Format.fprintf ppf "%d@@%d" (Node_id.to_int node)
           (Sim.Ticks.to_int time)))
    spec.crashes
    (float_str spec.send_omission)
    (float_str spec.recv_omission)
    (float_str spec.link_loss)
    spec.silenced_per_subrun spec.population

let json_of_spec spec =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "{\"crashes\":[";
  List.iteri
    (fun i (node, time) ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf "[%d,%d]" (Node_id.to_int node)
        (Sim.Ticks.to_int time))
    spec.crashes;
  Printf.bprintf buf
    "],\"send_omission\":%s,\"recv_omission\":%s,\"link_loss\":%s,\"silenced_per_subrun\":%d,\"population\":%d}"
    (float_str spec.send_omission)
    (float_str spec.recv_omission)
    (float_str spec.link_loss)
    spec.silenced_per_subrun spec.population;
  Buffer.contents buf

type t = {
  spec : spec;
  rng : Sim.Rng.t;
  crash_time : (Node_id.t, Sim.Ticks.t) Hashtbl.t;
  mutable silenced_subrun : int;  (* which subrun the cached set is for *)
  mutable silenced : Node_id.Set.t;
}

let create spec ~rng =
  let crash_time = Hashtbl.create 16 in
  List.iter (fun (node, time) -> Hashtbl.replace crash_time node time) spec.crashes;
  { spec; rng; crash_time; silenced_subrun = -1; silenced = Node_id.Set.empty }

let spec t = t.spec

let crashed t ~now node =
  match Hashtbl.find_opt t.crash_time node with
  | None -> false
  | Some time -> Sim.Ticks.(time <= now)

let crash_now t ~now node =
  if not (crashed t ~now node) then Hashtbl.replace t.crash_time node now

(* Resample the silenced set lazily at each subrun boundary. *)
let silenced_now t ~now node =
  if t.spec.silenced_per_subrun = 0 then false
  else begin
    let subrun = Sim.Ticks.to_int now / Sim.Ticks.per_rtd in
    if subrun <> t.silenced_subrun then begin
      t.silenced_subrun <- subrun;
      let ids = Array.init t.spec.population Node_id.of_int in
      Sim.Rng.shuffle t.rng ids;
      let chosen = Array.sub ids 0 t.spec.silenced_per_subrun in
      t.silenced <- Node_id.Set.of_list (Array.to_list chosen)
    end;
    Node_id.Set.mem node t.silenced
  end

let drop_on_send t ~now node =
  crashed t ~now node
  || silenced_now t ~now node
  || Sim.Rng.bool t.rng t.spec.send_omission

let drop_on_link t = Sim.Rng.bool t.rng t.spec.link_loss

let drop_on_recv t ~now node =
  crashed t ~now node || Sim.Rng.bool t.rng t.spec.recv_omission

let alive t ~now ~all = List.filter (fun node -> not (crashed t ~now node)) all
