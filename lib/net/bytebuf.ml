let ( let* ) = Result.bind

module Writer = struct
  type t = Buffer.t

  let create ?(capacity = 256) () = Buffer.create capacity

  let length = Buffer.length

  let check value bits =
    if value < 0 || (bits < 63 && value lsr bits <> 0) then
      invalid_arg (Printf.sprintf "Bytebuf.Writer: %d does not fit u%d" value bits)

  let u8 t v =
    check v 8;
    Buffer.add_uint8 t v

  let u16 t v =
    check v 16;
    Buffer.add_uint16_be t v

  let u24 t v =
    check v 24;
    Buffer.add_uint8 t (v lsr 16);
    Buffer.add_uint16_be t (v land 0xFFFF)

  let u32 t v =
    check v 32;
    Buffer.add_int32_be t (Int32.of_int v)

  let bytes t b = Buffer.add_bytes t b

  let bitmap t flags =
    let n = Array.length flags in
    let byte_count = (n + 7) / 8 in
    for byte = 0 to byte_count - 1 do
      let value = ref 0 in
      for bit = 0 to 7 do
        let i = (byte * 8) + bit in
        if i < n && flags.(i) then value := !value lor (1 lsl bit)
      done;
      Buffer.add_uint8 t !value
    done

  let contents t = Buffer.to_bytes t

  let clear = Buffer.clear

  let reset = Buffer.reset
end

module Reader = struct
  type t = { data : bytes; mutable pos : int }

  let of_bytes data = { data; pos = 0 }

  let remaining t = Bytes.length t.data - t.pos

  let need t n =
    if remaining t < n then Error (Printf.sprintf "truncated: need %d bytes" n)
    else Ok ()

  let u8 t =
    let* () = need t 1 in
    let v = Bytes.get_uint8 t.data t.pos in
    t.pos <- t.pos + 1;
    Ok v

  let u16 t =
    let* () = need t 2 in
    let v = Bytes.get_uint16_be t.data t.pos in
    t.pos <- t.pos + 2;
    Ok v

  let u24 t =
    let* hi = u8 t in
    let* lo = u16 t in
    Ok ((hi lsl 16) lor lo)

  let u32 t =
    let* () = need t 4 in
    let v = Int32.to_int (Bytes.get_int32_be t.data t.pos) in
    let v = v land 0xFFFFFFFF in
    t.pos <- t.pos + 4;
    Ok v

  let bytes t n =
    if n < 0 then Error "negative length"
    else
      let* () = need t n in
      let b = Bytes.sub t.data t.pos n in
      t.pos <- t.pos + n;
      Ok b

  let bitmap t n =
    if n < 0 then Error "negative bitmap size"
    else begin
      let byte_count = (n + 7) / 8 in
      let* raw = bytes t byte_count in
      Ok
        (Array.init n (fun i ->
             let byte = Bytes.get_uint8 raw (i / 8) in
             byte land (1 lsl (i mod 8)) <> 0))
    end

  let expect_end t =
    if remaining t = 0 then Ok ()
    else Error (Printf.sprintf "%d trailing bytes" (remaining t))
end

type 'a codec = {
  encode : 'a -> bytes;
  decode : bytes -> ('a, string) result;
}

let string_codec =
  { encode = Bytes.of_string; decode = (fun b -> Ok (Bytes.to_string b)) }
