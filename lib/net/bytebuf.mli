(** Byte-level writer/reader used by the wire codecs.

    Big-endian fixed-width integers; the reader returns [Error] instead of
    raising on truncated or malformed input, so decoding a hostile packet
    can never take a protocol entity down. *)

module Writer : sig
  type t

  val create : ?capacity:int -> unit -> t
  val length : t -> int
  val u8 : t -> int -> unit
  val u16 : t -> int -> unit
  val u24 : t -> int -> unit
  val u32 : t -> int -> unit
  (** Each raises [Invalid_argument] when the value does not fit. *)

  val bytes : t -> bytes -> unit
  val bitmap : t -> bool array -> unit
  (** Packs 8 flags per byte, LSB first, padded to a whole byte. *)

  val contents : t -> bytes

  val clear : t -> unit
  (** Empty the writer, keeping its grown internal storage: codec-heavy
      loops can encode one frame per iteration into a single writer
      without re-allocating the buffer each time.  A clear-then-encode
      produces exactly the bytes a fresh writer would. *)

  val reset : t -> unit
  (** Like {!clear}, but also returns the internal storage to the
      writer's creation capacity — use when an unusually large frame has
      ballooned a long-lived writer. *)
end

module Reader : sig
  type t

  val of_bytes : bytes -> t
  val remaining : t -> int
  val u8 : t -> (int, string) result
  val u16 : t -> (int, string) result
  val u24 : t -> (int, string) result
  val u32 : t -> (int, string) result
  val bytes : t -> int -> (bytes, string) result
  val bitmap : t -> int -> (bool array, string) result
  (** [bitmap r n] reads [ceil (n/8)] bytes and returns [n] flags. *)

  val expect_end : t -> (unit, string) result
end

val ( let* ) :
  ('a, string) result -> ('a -> ('b, string) result) -> ('b, string) result

type 'a codec = {
  encode : 'a -> bytes;
  decode : bytes -> ('a, string) result;
}
(** Payload codec threaded through the protocol wire codecs. *)

val string_codec : string codec
