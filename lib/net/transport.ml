type 'msg frame =
  | Payload of {
      xid : int;
      origin : Node_id.t;
      frag : int;  (** fragment index, 0-based *)
      frags : int;  (** total fragments of this request *)
      body : 'msg;
    }
  | Ack of { xid : int; frag : int }

(* Per-destination reassembly/acknowledgement state of one request. *)
type dst_state = {
  mutable missing : bool array;  (** fragments not yet acknowledged *)
  mutable complete : bool;
}

type 'msg pending = {
  xid : int;
  src : Node_id.t;
  h : int;
  kind : Traffic.kind;
  frag_sizes : int array;
  body : 'msg;
  per_dst : (int, dst_state) Hashtbl.t;
  mutable acked : int;  (** destinations fully acknowledged *)
  mutable retries_left : int;
  mutable confirmed : bool;
  on_confirm : acked:int -> unit;
}

type 'msg t = {
  net : 'msg frame Netsim.t;
  retry_interval : Sim.Ticks.t;
  max_retries : int;
  mtu : int option;
  handlers : (Node_id.t, src:Node_id.t -> 'msg -> unit) Hashtbl.t;
  (* Per-receiver reassembly: (origin, xid) -> fragments received, and
     whether the body was already delivered. *)
  reassembly : (Node_id.t, (int * int, bool array * bool ref) Hashtbl.t) Hashtbl.t;
  pendings : (int, 'msg pending) Hashtbl.t;
  mutable next_xid : int;
  mutable retransmissions : int;
  mutable fragments_sent : int;
}

let ack_size = 12

let fragment_header = 8

let create ?latency ?retry_interval ?max_retries ?mtu engine ~fault ~rng () =
  let retry_interval =
    Option.value retry_interval ~default:(Sim.Ticks.of_int Sim.Ticks.per_rtd)
  in
  let max_retries = Option.value max_retries ~default:4 in
  (match mtu with
  | Some mtu when mtu <= fragment_header ->
      invalid_arg "Transport.create: mtu too small"
  | Some _ | None -> ());
  {
    net = Netsim.create ?latency engine ~fault ~rng ();
    retry_interval;
    max_retries;
    mtu;
    handlers = Hashtbl.create 64;
    reassembly = Hashtbl.create 64;
    pendings = Hashtbl.create 64;
    next_xid = 0;
    retransmissions = 0;
    fragments_sent = 0;
  }

let traffic t = Netsim.traffic t.net
let set_trace t trace = Netsim.set_trace t.net trace
let retransmissions t = t.retransmissions
let dropped_count t = Netsim.dropped_count t.net
let fragments_sent t = t.fragments_sent
let engine t = Netsim.engine t.net
let fault t = Netsim.fault t.net

let fragment_sizes t total =
  match t.mtu with
  | None -> [| total |]
  | Some mtu ->
      let chunk = mtu - fragment_header in
      if total <= mtu then [| total |]
      else begin
        let count = (total + chunk - 1) / chunk in
        Array.init count (fun i ->
            let remaining = total - (i * chunk) in
            fragment_header + min chunk remaining)
      end

let reassembly_table t node =
  match Hashtbl.find_opt t.reassembly node with
  | Some table -> table
  | None ->
      let table = Hashtbl.create 256 in
      Hashtbl.replace t.reassembly node table;
      table

let on_frame t node packet =
  match packet.Netsim.payload with
  | Payload { xid; origin; frag; frags; body } ->
      let table = reassembly_table t node in
      let key = (Node_id.to_int origin, xid) in
      let received, delivered =
        match Hashtbl.find_opt table key with
        | Some state -> state
        | None ->
            let state = (Array.make frags false, ref false) in
            Hashtbl.replace table key state;
            state
      in
      if frag >= 0 && frag < Array.length received then begin
        received.(frag) <- true;
        if (not !delivered) && Array.for_all Fun.id received then begin
          delivered := true;
          match Hashtbl.find_opt t.handlers node with
          | Some handler -> handler ~src:origin body
          | None -> ()
        end
      end;
      (* Always (re-)ack the fragment so a lost ack does not force a
         useless retransmission. *)
      Netsim.send t.net ~src:node ~dst:origin ~kind:Traffic.Ack ~size:ack_size
        (Ack { xid; frag })
  | Ack { xid; frag } -> (
      match Hashtbl.find_opt t.pendings xid with
      | None -> ()
      | Some pending -> (
          let acker = Node_id.to_int packet.Netsim.src in
          match Hashtbl.find_opt pending.per_dst acker with
          | None -> ()
          | Some state ->
              if
                (not state.complete)
                && frag >= 0
                && frag < Array.length state.missing
              then begin
                state.missing.(frag) <- false;
                if not (Array.exists Fun.id state.missing) then begin
                  state.complete <- true;
                  pending.acked <- pending.acked + 1;
                  if pending.acked >= pending.h && not pending.confirmed then begin
                    pending.confirmed <- true;
                    Hashtbl.remove t.pendings xid;
                    pending.on_confirm ~acked:pending.acked
                  end
                end
              end))

let attach t node handler =
  if Hashtbl.mem t.handlers node then
    invalid_arg "Transport.attach: node already attached";
  Hashtbl.replace t.handlers node handler;
  Netsim.attach t.net node (on_frame t node)

let transmit t pending ~first =
  let frags = Array.length pending.frag_sizes in
  Hashtbl.iter
    (fun dst_int state ->
      if not state.complete then
        Array.iteri
          (fun frag missing ->
            if missing then begin
              if not first then t.retransmissions <- t.retransmissions + 1;
              if frags > 1 then t.fragments_sent <- t.fragments_sent + 1;
              Netsim.send t.net ~src:pending.src
                ~dst:(Node_id.of_int dst_int) ~kind:pending.kind
                ~size:pending.frag_sizes.(frag)
                (Payload
                   {
                     xid = pending.xid;
                     origin = pending.src;
                     frag;
                     frags;
                     body = pending.body;
                   })
            end)
          state.missing)
    pending.per_dst

let rec arm_retry t pending =
  ignore
    (Sim.Engine.schedule_after ~label:"net.retry" (Netsim.engine t.net)
       ~delay:t.retry_interval
       (fun () ->
         if not pending.confirmed then
           if pending.retries_left > 0 then begin
             pending.retries_left <- pending.retries_left - 1;
             transmit t pending ~first:false;
             arm_retry t pending
           end
           else begin
             (* The primitive never fails: confirm with whatever we got. *)
             pending.confirmed <- true;
             Hashtbl.remove t.pendings pending.xid;
             pending.on_confirm ~acked:pending.acked
           end))

let request t ~src ~dsts ~h ~kind ~size ~on_confirm body =
  if dsts = [] then invalid_arg "Transport.request: empty destination set";
  if h < 1 || h > List.length dsts then
    invalid_arg "Transport.request: h out of range";
  let xid = t.next_xid in
  t.next_xid <- t.next_xid + 1;
  let frag_sizes = fragment_sizes t size in
  let per_dst = Hashtbl.create (List.length dsts) in
  List.iter
    (fun dst ->
      Hashtbl.replace per_dst (Node_id.to_int dst)
        {
          missing = Array.make (Array.length frag_sizes) true;
          complete = false;
        })
    dsts;
  let pending =
    {
      xid;
      src;
      h;
      kind;
      frag_sizes;
      body;
      per_dst;
      acked = 0;
      retries_left = t.max_retries;
      confirmed = false;
      on_confirm;
    }
  in
  Hashtbl.replace t.pendings xid pending;
  transmit t pending ~first:true;
  arm_retry t pending
