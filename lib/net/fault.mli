(** Failure injection under the general omission model (Section 3).

    A process fails either by crashing (fail stop) or by omitting to send or
    receive a subset of its messages; link loss at the subnetwork level is
    modelled separately but has the same observable effect as an omission. *)

type spec = {
  crashes : (Node_id.t * Sim.Ticks.t) list;
      (** Fail-stop schedule: node [p] stops participating at the given time. *)
  send_omission : float;  (** Per-packet send-side drop probability. *)
  recv_omission : float;  (** Per-packet receive-side drop probability. *)
  link_loss : float;      (** Per-packet subnetwork loss probability. *)
  silenced_per_subrun : int;
      (** Adversarial send-omission bursts: every subrun, this many randomly
          chosen processes lose {e all} their outgoing packets for the whole
          subrun.  This is the failure shape behind the paper's resilience
          degree [t = (n-1)/2]: up to [t] such failures per subrun still let
          every coordinator receive the previous decision. *)
  population : int;
      (** Number of processes the silenced set is drawn from (the group
          size); only meaningful when [silenced_per_subrun > 0]. *)
}

val reliable : spec
(** No failures at all. *)

val omission_every : int -> spec
(** [omission_every k] drops on average one packet every [k], split evenly
    between send and receive omissions (the paper's 1/500 and 1/100 runs).
    Raises [Invalid_argument] if [k <= 0]. *)

val with_crashes : (Node_id.t * Sim.Ticks.t) list -> spec -> spec

val with_subrun_silence : count:int -> population:int -> spec -> spec
(** Adds the per-subrun silenced-set behaviour.  Raises [Invalid_argument]
    if [count < 0] or [count >= population]. *)

val pp_spec : Format.formatter -> spec -> unit

val json_of_spec : spec -> string
(** Canonical machine-readable form of a fault spec, used by the campaign
    reports.  Crash times are given in ticks; field order is fixed, so equal
    specs always serialize to the same bytes. *)

type t

val create : spec -> rng:Sim.Rng.t -> t

val spec : t -> spec

val crashed : t -> now:Sim.Ticks.t -> Node_id.t -> bool
(** True once the node's scheduled crash time has been reached. *)

val crash_now : t -> now:Sim.Ticks.t -> Node_id.t -> unit
(** Dynamically crash a node (used for suicide and for adaptive scenarios). *)

val drop_on_send : t -> now:Sim.Ticks.t -> Node_id.t -> bool
(** Decides whether this outgoing packet copy is lost to a send omission (or
    because the sender crashed).  Consumes randomness. *)

val drop_on_link : t -> bool

val drop_on_recv : t -> now:Sim.Ticks.t -> Node_id.t -> bool

val alive : t -> now:Sim.Ticks.t -> all:Node_id.t list -> Node_id.t list
(** Nodes of [all] not crashed at [now]. *)
