(** Multicast transport entity (Section 5).

    Implements the abstract service [t.data.Rq (m, h, v, d)]: the data [d] is
    transferred from the source to all destinations [m], and retransmission is
    used to ensure that at least [h] of them (1 <= h <= |m|) receive it.  The
    voting function [v] is not used by the urcgc protocol, so the semantics
    here are the paper's n-unicast semantics.  The primitive never fails: once
    the retry budget is exhausted the Confirm fires with however many
    destinations acknowledged.

    With [h = 1] the urcgc entity is mounted directly on the datagram
    subnetwork and this module is bypassed; it exists to reproduce the [h > 1]
    configurations discussed in Section 5 (retransmission moved into the
    transport, reduced use of recovery from history). *)

type 'msg t

val create :
  ?latency:Netsim.latency ->
  ?retry_interval:Sim.Ticks.t ->
  ?max_retries:int ->
  ?mtu:int ->
  Sim.Engine.t ->
  fault:Fault.t ->
  rng:Sim.Rng.t ->
  unit ->
  'msg t
(** [retry_interval] defaults to one rtd; [max_retries] to 4.

    [mtu] enables fragmentation and assembly (Section 5: the transport is
    "useful when there is the need of fragmenting and assembling the urcgc
    data units to fit the network packet size"): a request larger than the
    MTU is carried by ceil(size/mtu) fragments, reassembled at each
    destination, delivered once complete, and acknowledged as a whole;
    retransmissions resend only the fragments a destination has not
    acknowledged.  [None] (the default) sends every request as a single
    datagram regardless of size. *)

val attach : 'msg t -> Node_id.t -> (src:Node_id.t -> 'msg -> unit) -> unit
(** Registers the [t.data.Ind] handler of a node.  Duplicate transmissions of
    the same request are suppressed.  Every node that issues requests must
    also be attached: acknowledgements are addressed to the source node and
    are discarded if it has no handler. *)

val request :
  'msg t ->
  src:Node_id.t ->
  dsts:Node_id.t list ->
  h:int ->
  kind:Traffic.kind ->
  size:int ->
  on_confirm:(acked:int -> unit) ->
  'msg ->
  unit
(** [t.data.Rq].  [on_confirm] fires exactly once, when [h] acknowledgements
    have arrived or the retry budget is exhausted.  Raises [Invalid_argument]
    if [h < 1] or [h > List.length dsts] or [dsts = []]. *)

val traffic : 'msg t -> Traffic.t
(** Accounting of everything this transport offered to the subnetwork,
    including retransmissions and acks. *)

val set_trace : 'msg t -> Sim.Trace.t -> unit
(** Forwarded to the inner {!Netsim.set_trace}: frame drops show up as
    typed {!Sim.Trace.Drop} events. *)

val engine : 'msg t -> Sim.Engine.t

val fault : 'msg t -> Fault.t

val retransmissions : 'msg t -> int
(** Total packet copies sent beyond the first attempt (diagnostics). *)

val dropped_count : 'msg t -> int
(** Frames lost in the inner subnetwork (diagnostics). *)

val fragments_sent : 'msg t -> int
(** Fragment packets sent (0 when no MTU is configured or nothing exceeded
    it). *)
