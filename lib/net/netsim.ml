type 'msg packet = {
  src : Node_id.t;
  dst : Node_id.t;
  kind : Traffic.kind;
  size : int;
  payload : 'msg;
}

type latency = { base : Sim.Ticks.t; jitter : int }

let default_latency = { base = Sim.Ticks.of_int 40; jitter = 10 }

type 'msg t = {
  engine : Sim.Engine.t;
  fault : Fault.t;
  rng : Sim.Rng.t;
  latency : latency;
  traffic : Traffic.t;
  handlers : (Node_id.t, 'msg packet -> unit) Hashtbl.t;
  mutable delivered : int;
  mutable dropped : int;
  mutable filter : ('msg packet -> bool) option;
  mutable trace : Sim.Trace.t;
}

let create ?(latency = default_latency) engine ~fault ~rng () =
  {
    engine;
    fault;
    rng;
    latency;
    traffic = Traffic.create ();
    handlers = Hashtbl.create 64;
    delivered = 0;
    dropped = 0;
    filter = None;
    trace = Sim.Trace.null;
  }

let engine t = t.engine
let fault t = t.fault
let traffic t = t.traffic

let attach t node handler =
  if Hashtbl.mem t.handlers node then
    invalid_arg "Netsim.attach: node already attached";
  Hashtbl.replace t.handlers node handler

let one_way_delay t =
  let jitter =
    if t.latency.jitter <= 0 then 0 else Sim.Rng.int t.rng t.latency.jitter
  in
  Sim.Ticks.add t.latency.base (Sim.Ticks.of_int jitter)

let traffic_class_of_kind = function
  | Traffic.Data -> Sim.Trace.Traffic_class.Data
  | Traffic.Control -> Sim.Trace.Traffic_class.Control
  | Traffic.Recovery -> Sim.Trace.Traffic_class.Recovery
  | Traffic.Ack -> Sim.Trace.Traffic_class.Ack

let drop t packet stage =
  t.dropped <- t.dropped + 1;
  if Sim.Trace.enabled t.trace then
    Sim.Trace.emit t.trace ~time:(Sim.Engine.now t.engine)
      (Sim.Trace.Drop
         {
           src = Node_id.to_int packet.src;
           dst = Node_id.to_int packet.dst;
           kind = traffic_class_of_kind packet.kind;
           stage;
         })

let deliver t packet =
  let now = Sim.Engine.now t.engine in
  if Fault.drop_on_recv t.fault ~now packet.dst then
    drop t packet Sim.Trace.On_recv
  else
    match Hashtbl.find_opt t.handlers packet.dst with
    | None -> t.dropped <- t.dropped + 1
    | Some handler ->
        t.delivered <- t.delivered + 1;
        handler packet

let filtered_out t packet =
  match t.filter with None -> false | Some keep -> not (keep packet)

let send t ~src ~dst ~kind ~size payload =
  if !Sim.Prof.on then Sim.Prof.enter "net.send";
  Traffic.record t.traffic ~kind ~size;
  let now = Sim.Engine.now t.engine in
  let packet = { src; dst; kind; size; payload } in
  (* Deliberately an if/else-if chain, not a match on a tuple: the fault
     checks draw from the RNG, and the original short-circuit order
     (send, then link, then filter) is part of the determinism contract.
     The profiling probes never touch the RNG. *)
  if Fault.drop_on_send t.fault ~now src then drop t packet Sim.Trace.On_send
  else if Fault.drop_on_link t.fault then drop t packet Sim.Trace.On_link
  else if filtered_out t packet then drop t packet Sim.Trace.On_filter
  else begin
    let delay = one_way_delay t in
    ignore
      (Sim.Engine.schedule_after ~label:"net.deliver" t.engine ~delay (fun () ->
           deliver t packet))
  end;
  if !Sim.Prof.on then Sim.Prof.exit ()

let multicast t ~src ~dsts ~kind ~size payload =
  List.iter (fun dst -> send t ~src ~dst ~kind ~size payload) dsts

let delivered_count t = t.delivered
let dropped_count t = t.dropped

let set_filter t filter = t.filter <- filter

let set_trace t trace = t.trace <- trace
