type 'msg packet = {
  src : Node_id.t;
  dst : Node_id.t;
  kind : Traffic.kind;
  size : int;
  payload : 'msg;
}

type latency = { base : Sim.Ticks.t; jitter : int }

let default_latency = { base = Sim.Ticks.of_int 40; jitter = 10 }

(* Packet handlers see the full datagram; payload handlers are the
   allocation-free fast path for receivers that only read the payload —
   batched delivery then never materializes a packet record for them. *)
type 'msg handler =
  | No_handler
  | Packet_handler of ('msg packet -> unit)
  | Payload_handler of ('msg -> unit)

type 'msg t = {
  engine : Sim.Engine.t;
  fault : Fault.t;
  rng : Sim.Rng.t;
  latency : latency;
  traffic : Traffic.t;
  (* Dense, indexed by [Node_id.to_int]: the per-delivery lookup is an
     array read, not a hash probe allocating an option. *)
  mutable handlers : 'msg handler array;
  mutable delivered : int;
  mutable dropped : int;
  mutable filter : ('msg packet -> bool) option;
  mutable trace : Sim.Trace.t;
  (* Per-destination jitter offsets of the multicast being bucketed; only
     live within one [multicast_array] call (no user code runs while it is
     in use), and owned by this network — [Pool]-parallel campaigns give
     every run its own network, so no domain shares it. *)
  mutable scratch_offsets : int array;
}

let create ?(latency = default_latency) engine ~fault ~rng () =
  {
    engine;
    fault;
    rng;
    latency;
    traffic = Traffic.create ();
    handlers = [||];
    delivered = 0;
    dropped = 0;
    filter = None;
    trace = Sim.Trace.null;
    scratch_offsets = [||];
  }

let engine t = t.engine
let fault t = t.fault
let traffic t = t.traffic

let handler_slot t node =
  let i = Node_id.to_int node in
  if i < Array.length t.handlers then t.handlers.(i) else No_handler

let set_handler t node handler =
  let i = Node_id.to_int node in
  if i >= Array.length t.handlers then begin
    let grown = Array.make (max 16 (2 * (i + 1))) No_handler in
    Array.blit t.handlers 0 grown 0 (Array.length t.handlers);
    t.handlers <- grown
  end;
  (match t.handlers.(i) with
  | No_handler -> ()
  | Packet_handler _ | Payload_handler _ ->
      invalid_arg "Netsim.attach: node already attached");
  t.handlers.(i) <- handler

let attach t node handler = set_handler t node (Packet_handler handler)
let attach_payload t node handler = set_handler t node (Payload_handler handler)

let one_way_delay t =
  let jitter =
    if t.latency.jitter <= 0 then 0 else Sim.Rng.int t.rng t.latency.jitter
  in
  Sim.Ticks.add t.latency.base (Sim.Ticks.of_int jitter)

let traffic_class_of_kind = function
  | Traffic.Data -> Sim.Trace.Traffic_class.Data
  | Traffic.Control -> Sim.Trace.Traffic_class.Control
  | Traffic.Recovery -> Sim.Trace.Traffic_class.Recovery
  | Traffic.Ack -> Sim.Trace.Traffic_class.Ack

let drop_fields t ~src ~dst ~kind stage =
  t.dropped <- t.dropped + 1;
  if Sim.Trace.enabled t.trace then
    Sim.Trace.emit t.trace ~time:(Sim.Engine.now t.engine)
      (Sim.Trace.Drop
         {
           src = Node_id.to_int src;
           dst = Node_id.to_int dst;
           kind = traffic_class_of_kind kind;
           stage;
         })

let drop t packet stage =
  drop_fields t ~src:packet.src ~dst:packet.dst ~kind:packet.kind stage

let deliver t packet =
  let now = Sim.Engine.now t.engine in
  if Fault.drop_on_recv t.fault ~now packet.dst then
    drop t packet Sim.Trace.On_recv
  else
    match handler_slot t packet.dst with
    | No_handler -> t.dropped <- t.dropped + 1
    | Packet_handler handler ->
        t.delivered <- t.delivered + 1;
        handler packet
    | Payload_handler handler ->
        t.delivered <- t.delivered + 1;
        handler packet.payload

let filtered_out t packet =
  match t.filter with None -> false | Some keep -> not (keep packet)

let send t ~src ~dst ~kind ~size payload =
  if !Sim.Prof.on then Sim.Prof.enter "net.send";
  Traffic.record t.traffic ~kind ~size;
  let now = Sim.Engine.now t.engine in
  let packet = { src; dst; kind; size; payload } in
  (* Deliberately an if/else-if chain, not a match on a tuple: the fault
     checks draw from the RNG, and the original short-circuit order
     (send, then link, then filter) is part of the determinism contract.
     The profiling probes never touch the RNG. *)
  if Fault.drop_on_send t.fault ~now src then drop t packet Sim.Trace.On_send
  else if Fault.drop_on_link t.fault then drop t packet Sim.Trace.On_link
  else if filtered_out t packet then drop t packet Sim.Trace.On_filter
  else begin
    let delay = one_way_delay t in
    ignore
      (Sim.Engine.schedule_after ~label:"net.deliver" t.engine ~delay (fun () ->
           deliver t packet))
  end;
  if !Sim.Prof.on then Sim.Prof.exit ()

let multicast t ~src ~dsts ~kind ~size payload =
  List.iter (fun dst -> send t ~src ~dst ~kind ~size payload) dsts

(* Deliver one jitter bucket of a batched multicast: the surviving
   destinations that drew the same delay, in original destination order.
   Packets are materialized here, per delivered destination, rather than at
   send time for the whole fan-out. *)
let deliver_batch t ~src ~kind ~size payload batch =
  let now = Sim.Engine.now t.engine in
  for i = 0 to Array.length batch - 1 do
    let dst = batch.(i) in
    if Fault.drop_on_recv t.fault ~now dst then
      drop_fields t ~src ~dst ~kind Sim.Trace.On_recv
    else
      match handler_slot t dst with
      | No_handler -> t.dropped <- t.dropped + 1
      | Payload_handler handler ->
          t.delivered <- t.delivered + 1;
          handler payload
      | Packet_handler handler ->
          t.delivered <- t.delivered + 1;
          handler { src; dst; kind; size; payload }
  done

(* One batched delivery event per distinct jitter offset instead of one
   event + closure + packet per destination.  Byte-identical to the n-unicast
   form: the RNG draws (send fault, link fault, jitter — per destination, in
   destination order) happen in pass 1 exactly as [send] interleaved them,
   and the delivery order is unchanged — the old per-destination events of
   one multicast carried consecutive engine seqs, so they popped sorted by
   (delay, destination index), which is precisely how the buckets fire (one
   event per delay, ascending, each delivering in destination order; receive
   omissions are drawn at delivery in that same global order). *)
let multicast_array t ~src ~dsts ~kind ~size payload =
  let len = Array.length dsts in
  let jitter = t.latency.jitter in
  if len = 0 then ()
  else if t.filter <> None || jitter > 64 then
    (* A scripted filter wants a per-destination packet at send time, and a
       pathological jitter range would cost more to bucket than to fan out:
       take the n-unicast path (same draws, same events as ever). *)
    Array.iter (fun dst -> send t ~src ~dst ~kind ~size payload) dsts
  else begin
    if !Sim.Prof.on then Sim.Prof.enter "net.send";
    let now = Sim.Engine.now t.engine in
    if Array.length t.scratch_offsets < len then
      t.scratch_offsets <- Array.make (max 16 (2 * len)) 0;
    let offsets = t.scratch_offsets in
    for i = 0 to len - 1 do
      let dst = dsts.(i) in
      Traffic.record t.traffic ~kind ~size;
      if Fault.drop_on_send t.fault ~now src then begin
        drop_fields t ~src ~dst ~kind Sim.Trace.On_send;
        offsets.(i) <- -1
      end
      else if Fault.drop_on_link t.fault then begin
        drop_fields t ~src ~dst ~kind Sim.Trace.On_link;
        offsets.(i) <- -1
      end
      else offsets.(i) <- if jitter <= 0 then 0 else Sim.Rng.int t.rng jitter
    done;
    let max_offset = if jitter <= 0 then 0 else jitter - 1 in
    for o = 0 to max_offset do
      let count = ref 0 in
      for i = 0 to len - 1 do
        if offsets.(i) = o then incr count
      done;
      if !count > 0 then begin
        let batch = Array.make !count src in
        let k = ref 0 in
        for i = 0 to len - 1 do
          if offsets.(i) = o then begin
            batch.(!k) <- dsts.(i);
            incr k
          end
        done;
        let delay = Sim.Ticks.add t.latency.base (Sim.Ticks.of_int o) in
        ignore
          (Sim.Engine.schedule_after ~label:"net.deliver" t.engine ~delay
             (fun () -> deliver_batch t ~src ~kind ~size payload batch))
      end
    done;
    if !Sim.Prof.on then Sim.Prof.exit ()
  end

let delivered_count t = t.delivered
let dropped_count t = t.dropped

let set_filter t filter = t.filter <- filter

let set_trace t trace = t.trace <- trace
